"""Graceful-drain coverage against real processes and real signals.

Subprocess-based, like the fabric kill/reclaim harness: the daemon
(``repro-renaming serve``) is started as a child process, hit with
SIGTERM/SIGINT mid-session, and must honor the drain contract — in-flight
sessions complete, late connects get a typed ServerBusy, the exit code
says what happened (0 clean, 4 sessions shed). The worker half drains the
``worker`` subcommand mid-sweep and asserts the lease story: every cell
finished exactly once, no re-execution, doctor-clean store.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis.store import open_store
from repro.service.frames import read_frame, write_frame
from repro.service.messages import (
    CertificateMessage,
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _cli(args, *, env=None, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env={**os.environ, "PYTHONPATH": SRC, **(env or {})},
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _spawn(args, *, env=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env={**os.environ, "PYTHONPATH": SRC, **(env or {})},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for_port_file(path, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            out, err = process.communicate()
            raise AssertionError(f"daemon died before binding: {out}\n{err}")
        if os.path.exists(path):
            text = open(path).read().strip()
            if text:
                host, _, port = text.rpartition(":")
                return host, int(port)
        time.sleep(0.05)
    raise AssertionError("daemon never wrote its port file")


def _finish(process, timeout=30):
    try:
        out, err = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        out, err = process.communicate()
        raise AssertionError(f"daemon did not exit after drain: {out}\n{err}")
    return process.returncode, out, err


async def _expect(reader, message_type, timeout=15.0):
    message = await asyncio.wait_for(read_frame(reader), timeout)
    assert isinstance(message, message_type), f"got {message!r}"
    return message


class TestServeDrain:
    def test_sigterm_finishes_in_flight_and_exits_clean(self, tmp_path):
        port_file = tmp_path / "svc.port"
        daemon = _spawn(
            [
                "serve", "--port", "0", "--port-file", str(port_file),
                "--session-deadline", "15", "--idle-timeout", "15",
                "--drain-grace", "20",
            ]
        )
        try:
            host, port = _wait_for_port_file(str(port_file), daemon)

            async def scenario():
                reader, writer = await asyncio.open_connection(host, port)
                await _expect(reader, SessionWelcomeMessage)
                await write_frame(writer, OpenSessionMessage())
                await write_frame(writer, RegisterIdsMessage(ids=(4, 9, 17, 23)))

                daemon.send_signal(signal.SIGTERM)

                # Once the drain flag is visible, new connects are turned
                # away with an explicit ServerBusy — poll until it is.
                for _ in range(100):
                    late_r, late_w = await asyncio.open_connection(host, port)
                    first = await asyncio.wait_for(read_frame(late_r), 15.0)
                    late_w.close()
                    await late_w.wait_closed()
                    if isinstance(first, ServerBusyMessage):
                        break
                    await asyncio.sleep(0.05)
                else:
                    raise AssertionError("drain never refused a late connect")

                # The in-flight session still completes, certificate and all.
                await write_frame(writer, CloseSessionMessage())
                names = await _expect(reader, NamesAssignedMessage)
                certificate = await _expect(reader, CertificateMessage)
                assert len(names.entries) == 4
                assert certificate.ok, certificate.violations
                writer.close()
                await writer.wait_closed()

            asyncio.run(scenario())
            code, out, err = _finish(daemon)
            assert code == 0, f"{out}\n{err}"
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()

    def test_sigint_sheds_stragglers_and_exits_4(self, tmp_path):
        port_file = tmp_path / "svc.port"
        daemon = _spawn(
            [
                "serve", "--port", "0", "--port-file", str(port_file),
                "--session-deadline", "60", "--idle-timeout", "60",
                "--drain-grace", "0.3",
            ]
        )
        try:
            host, port = _wait_for_port_file(str(port_file), daemon)

            async def scenario():
                reader, writer = await asyncio.open_connection(host, port)
                await _expect(reader, SessionWelcomeMessage)
                await write_frame(writer, OpenSessionMessage())
                daemon.send_signal(signal.SIGINT)
                # The straggler is shed with a typed shutdown error, not a
                # bare connection reset.
                error = await _expect(reader, SessionErrorMessage)
                assert error.code == "shutdown"
                writer.close()
                await writer.wait_closed()

            asyncio.run(scenario())
            code, out, err = _finish(daemon)
            assert code == 4, f"{out}\n{err}"
            assert "1 shed" in out
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()


class TestWorkerDrain:
    """SIGTERM against the fabric worker: finish the cell, keep the store
    doctor-clean — the lease is either finished or expiry-reclaimed, and
    every cell executes exactly once."""

    def test_sigterm_mid_sweep_releases_cleanly(self, tmp_path):
        url = f"sqlite:{tmp_path / 'store.sqlite'}"
        grid = [
            "--algorithms", "alg1",
            "--sizes", "7:2",
            "--attacks", "silent", "conforming",
            "--seeds", "0", "1", "2", "3",
        ]
        coordinator = _spawn(
            [
                "sweep", *grid, "--workers", "1", "--store", url,
                "--coordinator-only", "--csv", str(tmp_path / "out.csv"),
            ]
        )
        try:
            drained = _spawn(
                [
                    "worker", "--store", url, "--worker-id", "drained",
                    "--lease", "2", "--wait-for-store", "60",
                ]
            )
            # Let it claim at least one cell before asking it to stop — a
            # wall-clock sleep races worker startup (imports + signal
            # handler installation) on a loaded host, so wait for the
            # store's own event log to show a claim by this worker.
            deadline = time.monotonic() + 60.0
            store = open_store(url)
            while time.monotonic() < deadline:
                if drained.poll() is not None:
                    out, err = drained.communicate()
                    raise AssertionError(f"worker died early: {out}\n{err}")
                if any(
                    e["event"] == "claimed" and e.get("worker") == "drained"
                    for e in store.events()
                ):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("worker never claimed a cell")
            drained.send_signal(signal.SIGTERM)
            out, err = drained.communicate(timeout=60)
            assert drained.returncode == 0, err
            assert "worker drained" in out

            # A second worker runs the store dry.
            medic = _cli(
                [
                    "worker", "--store", url, "--worker-id", "medic",
                    "--lease", "2", "--wait-for-store", "60",
                ]
            )
            assert medic.returncode == 0, medic.stderr

            out, err = coordinator.communicate(timeout=120)
            assert coordinator.returncode == 0, err
        finally:
            for process in (coordinator,):
                if process.poll() is None:
                    process.kill()
                    process.communicate()

        # Exactly-once execution, whichever worker ran each cell.
        store = open_store(url)
        finished = [
            e["cell"] for e in store.events() if e["event"] == "finished"
        ]
        assert sorted(finished) == sorted(set(finished))
        doctor = _cli(
            ["runs", "doctor", "--store", url, "--assert-no-reexecution"]
        )
        assert doctor.returncode == 0, doctor.stdout + doctor.stderr
