"""Cross-engine differential harness: every engine ≡ reference, always.

The batched engine (:mod:`repro.sim.engine`) and the numpy-backed vector
engine (:mod:`repro.sim.engine_vector`) are only allowed to exist because
they are *provably behaviour-identical* to the reference loop. This suite
is that proof, in executable form:

* every registered algorithm × every registered-meaningful attack, across
  a seed grid (2 seeds in tier-1, the full ≥20-seed grid nightly via the
  ``slow`` marker) — full output/trace/metrics equality for **every**
  registered engine against the reference;
* the knob cross-product: ``through_wire``, ``collect_metrics=False``,
  tracing on/off;
* error identity: all engines raise the same exception types with the
  same messages for round-limit overruns, protocol violations, and
  adversary misconfiguration;
* hypothesis-driven fuzz-adversary runs where the *seed is the
  reproducer*: a failing example prints the (algorithm, seed) pair, and
  ``run_registered(algorithm, ..., attack="fuzz", seed=<seed>, ...)``
  replays it deterministically (see docs/model.md).

The grid iterates ``engine_names()``, so it covers whatever is registered:
without numpy the vector engine is absent and the suite degrades to the
two pure-Python engines with no skips or failures.

If an engine divergence ever appears, fix the non-reference engine — the
reference loop is the specification.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import assert_runs_identical, run_registered, standard_ids
from repro.analysis import ALGORITHMS
from repro.core.messages import IdMessage
from repro.sim import (
    BROADCAST,
    ConfigurationError,
    Process,
    ProtocolViolationError,
    RoundLimitExceeded,
    engine_names,
    resolve_engine,
    run_protocol,
)

#: Smallest (n, t) at which each registered algorithm's resilience condition
#: holds with t > 0 (so every attack actually gets fault slots to drive).
#: A newly registered algorithm MUST be added here — the grid test below
#: fails loudly otherwise, which is the point: no algorithm ships without
#: differential coverage.
SIZES = {
    "alg1": (7, 2),
    "alg1-constant": (11, 1),
    "alg4": (11, 2),
    "cht": (7, 2),
    "consensus": (7, 2),
    "floodset": (7, 2),
    "okun-crash": (7, 2),
    "translated": (11, 2),
}

GRID = [
    (algorithm, attack)
    for algorithm in sorted(ALGORITHMS)
    for attack in ALGORITHMS[algorithm].attacks
]

FAST_SEEDS = range(2)
FULL_SEEDS = range(20)

#: All registered engines, pinned at import. ``reference`` is always first
#: (it is the oracle every other engine is compared against).
ALL_ENGINES = tuple(engine_names())


def _compare(algorithm: str, attack: str, seed: int, **knobs) -> None:
    if algorithm not in SIZES:
        pytest.fail(
            f"algorithm {algorithm!r} has no differential size — add it to "
            "tests/test_engine_differential.py::SIZES"
        )
    n, t = SIZES[algorithm]
    runs = {
        engine: run_registered(
            algorithm, n, t, attack=attack, seed=seed, engine=engine, **knobs
        )
        for engine in ALL_ENGINES
    }
    for engine, run in runs.items():
        if engine == "reference":
            continue
        assert_runs_identical(
            runs["reference"],
            run,
            context=f"{algorithm}/{attack}/seed={seed}/{engine}/{knobs}",
        )


@pytest.mark.parametrize("algorithm,attack", GRID)
def test_engines_identical(algorithm, attack):
    """Tier-1 core: every algorithm × attack, traced, two seeds."""
    for seed in FAST_SEEDS:
        _compare(algorithm, attack, seed)


@pytest.mark.slow
@pytest.mark.parametrize("algorithm,attack", GRID)
def test_engines_identical_full_seed_grid(algorithm, attack):
    """The acceptance grid: every algorithm × attack × 20 seeds."""
    for seed in FULL_SEEDS:
        _compare(algorithm, attack, seed)


@pytest.mark.parametrize(
    "algorithm,attack",
    [("alg1", "id-forging"), ("alg4", "selective-echo"), ("consensus", "fuzz")],
)
def test_engines_identical_through_wire(algorithm, attack):
    """The codec round-trip drill must not open an engine gap."""
    for seed in FAST_SEEDS:
        _compare(algorithm, attack, seed, through_wire=True)


@pytest.mark.parametrize("algorithm", ["alg1", "consensus"])
def test_engines_identical_without_trace(algorithm):
    _compare(algorithm, "conforming", 0, collect_trace=False)


def test_engines_identical_without_metrics():
    """``collect_metrics=False`` zeroes traffic counters identically; round
    count — load-bearing for every caller — is still maintained."""
    runs = {
        engine: run_registered(
            "alg1", 7, 2, attack="divergence", seed=1, engine=engine,
            collect_metrics=False,
        )
        for engine in ALL_ENGINES
    }
    for engine, run in runs.items():
        if engine != "reference":
            assert_runs_identical(
                runs["reference"], run, f"no-metrics/{engine}"
            )
    for result in runs.values():
        assert result.metrics.correct_messages == 0
        assert result.metrics.correct_bits == 0
        assert result.metrics.round_count > 0


def test_metrics_off_matches_metrics_on_outputs():
    """Disabling accounting must never change what the protocol computes."""
    on = run_registered("alg1", 7, 2, attack="rank-skew", seed=3, engine="batched")
    off = run_registered(
        "alg1", 7, 2, attack="rank-skew", seed=3, engine="batched",
        collect_metrics=False,
    )
    assert on.outputs == off.outputs
    assert list(on.trace) == list(off.trace)


# --------------------------------------------------------------- error identity


class _Forever(Process):
    def send(self, round_no):
        return {}

    def deliver(self, round_no, inbox):
        pass


class _BadLink(Process):
    def send(self, round_no):
        return {999: [IdMessage(self.ctx.my_id)]}

    def deliver(self, round_no, inbox):
        pass


class _NonMessage(Process):
    def send(self, round_no):
        return {BROADCAST: ["not a message"]}

    def deliver(self, round_no, inbox):
        pass


def _error_text(factory, engine, n=4):
    with pytest.raises((RoundLimitExceeded, ProtocolViolationError)) as info:
        run_protocol(
            factory, n=n, t=0, ids=standard_ids(n), seed=0, max_rounds=5,
            engine=engine,
        )
    return type(info.value), str(info.value)


@pytest.mark.parametrize("factory", [_Forever, _BadLink, _NonMessage])
def test_error_identity(factory):
    """Same exception type, same message, from every engine."""
    texts = {_error_text(factory, engine) for engine in ALL_ENGINES}
    assert len(texts) == 1, texts


def test_adversary_as_correct_process_rejected_identically():
    from repro.sim import Adversary

    class Impostor(Adversary):
        def send(self, round_no, correct_outboxes):
            return {0: {}}  # slot 0 is correct when byzantine is pinned to {3}

    errors = {}
    for engine in engine_names():
        with pytest.raises(ConfigurationError) as info:
            run_protocol(
                _Forever, n=4, t=1, ids=standard_ids(4), byzantine=[3],
                adversary=Impostor(), seed=0, max_rounds=5, engine=engine,
            )
        errors[engine] = str(info.value)
    assert len(set(errors.values())) == 1
    assert "adversary tried to send as correct process 0" in errors["batched"]


# --------------------------------------------------------------- engine registry


def test_unknown_engine_rejected():
    with pytest.raises(ConfigurationError, match="unknown engine 'warp'"):
        run_protocol(_Forever, n=3, t=0, ids=standard_ids(3), engine="warp")


def test_registry_consistent():
    try:
        import numpy  # noqa: F401 — probe only
    except ImportError:
        expected = ["batched", "reference"]
    else:
        expected = ["batched", "reference", "vector"]
    assert engine_names() == expected
    for name in engine_names():
        assert resolve_engine(name).name == name


def test_default_engine_is_batched():
    from repro.sim import DEFAULT_ENGINE

    assert DEFAULT_ENGINE == "batched"


# ------------------------------------------------------ hypothesis fuzz harness

FUZZ_ALGORITHMS = ["alg1", "alg1-constant", "alg4", "consensus"]


@settings(max_examples=20, deadline=None)
@given(
    algorithm=st.sampled_from(FUZZ_ALGORITHMS),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_fuzz_adversary_differential(algorithm, seed):
    """The fuzz adversary throws seed-derived garbage at the protocol; both
    engines must process it identically. The failing (algorithm, seed) pair
    IS the reproducer — replay with run_registered(algorithm, *SIZES[...],
    attack="fuzz", seed=seed, engine=...)."""
    _compare(algorithm, "fuzz", seed)


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(
    algorithm=st.sampled_from(FUZZ_ALGORITHMS),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    through_wire=st.booleans(),
)
def test_fuzz_adversary_differential_deep(algorithm, seed, through_wire):
    _compare(algorithm, "fuzz", seed, through_wire=through_wire)


@pytest.mark.slow
def test_engines_identical_large_n():
    """A paper-scale configuration (the kind sweeps actually run)."""
    for algorithm, n, t in [("alg1", 25, 8), ("alg4", 37, 4)]:
        attack = ALGORITHMS[algorithm].attacks[-1]
        runs = {
            engine: run_registered(
                algorithm, n, t, attack=attack, seed=0, engine=engine
            )
            for engine in ALL_ENGINES
        }
        for engine, run in runs.items():
            if engine != "reference":
                assert_runs_identical(
                    runs["reference"], run, f"{algorithm}@{n}:{t}/{engine}"
                )
