"""Shared helper functions for the test suite (import from here,
not from conftest — conftest is pytest plumbing and its module name clashes
with benchmarks/conftest.py when both trees are collected together)."""

from __future__ import annotations

from repro.analysis import check_renaming
from repro.sim import RunResult


def assert_renaming_ok(
    result: RunResult,
    namespace: int,
    require_order: bool = True,
    context: str = "",
) -> None:
    """Assert the four renaming properties on a run, with a readable message."""
    report = check_renaming(result, namespace)
    ok = report.ok if require_order else report.ok_without_order()
    assert ok, f"{context} violations: {report.violations} names={report.names}"


def standard_ids(n: int, spacing: int = 10, start: int = 10) -> list:
    """Evenly spaced ids — the default deterministic workload for unit tests."""
    return [start + spacing * index for index in range(n)]
