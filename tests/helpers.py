"""Shared helper functions for the test suite (import from here,
not from conftest — conftest is pytest plumbing and its module name clashes
with benchmarks/conftest.py when both trees are collected together)."""

from __future__ import annotations

from typing import Optional

from repro.adversary import make_adversary
from repro.analysis import ALGORITHMS, check_renaming
from repro.sim import RunResult, SystemModel, run_protocol


def assert_renaming_ok(
    result: RunResult,
    namespace: int,
    require_order: bool = True,
    context: str = "",
) -> None:
    """Assert the four renaming properties on a run, with a readable message."""
    report = check_renaming(result, namespace)
    ok = report.ok if require_order else report.ok_without_order()
    assert ok, f"{context} violations: {report.violations} names={report.names}"


def standard_ids(n: int, spacing: int = 10, start: int = 10) -> list:
    """Evenly spaced ids — the default deterministic workload for unit tests."""
    return [start + spacing * index for index in range(n)]


def run_registered(
    algorithm: str,
    n: int,
    t: int,
    *,
    attack: str,
    seed: int,
    engine: str,
    ids: Optional[list] = None,
    collect_trace: bool = True,
    through_wire: bool = False,
    collect_metrics: bool = True,
    topology_seed: Optional[int] = None,
    max_rounds: int = 1000,
    model: Optional[SystemModel] = None,
) -> RunResult:
    """One registered-algorithm run with every engine-relevant knob exposed.

    The differential and metamorphic suites drive :func:`run_protocol`
    directly (not :func:`~repro.analysis.experiments.run_experiment`) so
    they can vary ``engine`` / ``topology_seed`` / ``collect_metrics`` /
    ``model`` while reusing the registry's factories and attack lists.
    """
    spec = ALGORITHMS[algorithm]
    if ids is None:
        ids = standard_ids(n)
    return run_protocol(
        spec.build_factory(n, t, ids, seed),
        n=n,
        t=t,
        ids=ids,
        adversary=make_adversary(attack) if t > 0 else None,
        seed=seed,
        collect_trace=collect_trace,
        through_wire=through_wire,
        engine=engine,
        collect_metrics=collect_metrics,
        topology_seed=topology_seed,
        max_rounds=max_rounds,
        model=model,
    )


def assert_runs_identical(a: RunResult, b: RunResult, context: str = "") -> None:
    """Full cross-engine equality: outputs, fault pattern, traces, metrics.

    This is the behaviour-identity contract from :mod:`repro.sim.engine` in
    assert form — everything a caller can observe about a finished run must
    match, including the per-round metric records and the exact trace event
    stream.
    """
    assert a.n == b.n and a.t == b.t, context
    assert a.byzantine == b.byzantine, context
    assert a.ids == b.ids, context
    assert a.outputs == b.outputs, (
        f"{context}: outputs differ\n  a={a.outputs}\n  b={b.outputs}"
    )
    ma, mb = a.metrics, b.metrics
    assert ma.round_count == mb.round_count, context
    assert ma.correct_messages == mb.correct_messages, (
        f"{context}: correct_messages {ma.correct_messages} != {mb.correct_messages}"
    )
    assert ma.correct_bits == mb.correct_bits, (
        f"{context}: correct_bits {ma.correct_bits} != {mb.correct_bits}"
    )
    assert ma.byzantine_messages == mb.byzantine_messages, context
    assert ma.peak_message_bits == mb.peak_message_bits, context
    assert ma.rounds == mb.rounds, f"{context}: per-round records differ"
    if a.trace is None or b.trace is None:
        assert (a.trace is None) == (b.trace is None), context
    else:
        assert list(a.trace) == list(b.trace), f"{context}: traces differ"
