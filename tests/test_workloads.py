"""Tests for id workload generators and canned scenarios."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import (
    DEFAULT_NAMESPACE,
    all_scenarios,
    get_scenario,
    make_ids,
    scenario_names,
    workload_names,
)


class TestGenerators:
    @pytest.mark.parametrize("kind", ["uniform", "dense", "clustered", "extreme"])
    @given(n=st.integers(min_value=2, max_value=40), seed=st.integers(0, 50))
    def test_unique_positive_in_namespace(self, kind, n, seed):
        ids = make_ids(kind, n, seed=seed)
        assert len(ids) == n
        assert len(set(ids)) == n
        assert all(1 <= identifier <= DEFAULT_NAMESPACE for identifier in ids)

    def test_deterministic(self):
        assert make_ids("uniform", 9, seed=3) == make_ids("uniform", 9, seed=3)

    def test_seed_varies_uniform(self):
        assert make_ids("uniform", 9, seed=3) != make_ids("uniform", 9, seed=4)

    def test_dense_consecutive(self):
        ids = make_ids("dense", 6, seed=0)
        assert ids == list(range(ids[0], ids[0] + 6))

    def test_clustered_has_gap(self):
        ids = sorted(make_ids("clustered", 10, seed=0))
        gaps = [b - a for a, b in zip(ids, ids[1:])]
        assert max(gaps) > 100 * min(gaps)

    def test_extreme_touches_both_ends(self):
        ids = make_ids("extreme", 6, seed=0)
        assert 1 in ids
        assert DEFAULT_NAMESPACE in ids

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_ids("bogus", 5)

    def test_names_listing(self):
        assert "uniform" in workload_names()


class TestScenarios:
    def test_all_scenarios_consistent(self):
        for scenario in all_scenarios():
            assert scenario.n > scenario.t >= 0
            assert scenario.workload in workload_names()

    def test_lookup(self):
        scenario = get_scenario("saturation")
        assert scenario.attack == "id-forging"

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            get_scenario("bogus")

    def test_names_sorted(self):
        names = scenario_names()
        assert names == sorted(names)

    def test_scenarios_runnable(self):
        from repro.analysis import run_experiment
        from repro.workloads import make_ids

        scenario = get_scenario("silent-minority")
        ids = make_ids(scenario.workload, scenario.n, seed=0)
        record = run_experiment(
            "alg1", scenario.n, scenario.t, ids, attack=scenario.attack
        )
        assert record.report.ok
