"""Large-scale spot checks: the guarantees at the biggest sizes we run.

The parametrized matrices elsewhere stay small for speed; this module
pushes each algorithm to larger (N, t) against its strongest attack once,
so scale-dependent bugs (overflow in bounds arithmetic, Fraction blowup,
quadratic hot loops) can't hide behind small fixtures.
"""

from __future__ import annotations

import pytest

from helpers import assert_renaming_ok
from repro import (
    ConstantTimeRenaming,
    OrderPreservingRenaming,
    SystemParams,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import make_adversary
from repro.workloads import make_ids


class TestAlg1LargeScale:
    @pytest.mark.parametrize(
        "n,t,attack",
        [
            (19, 6, "id-forging"),
            (25, 8, "divergence-valid"),
            (31, 10, "rank-skew"),
            (40, 13, "silent"),
        ],
    )
    def test_properties_and_rounds(self, n, t, attack):
        params = SystemParams(n, t)
        result = run_protocol(
            OrderPreservingRenaming,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=0),
            adversary=make_adversary(attack),
            seed=0,
        )
        assert_renaming_ok(
            result, params.namespace_bound, context=f"n={n} t={t} {attack}"
        )
        assert result.metrics.round_count == params.total_rounds

    def test_forging_saturation_at_scale(self):
        n, t = 25, 8
        result = run_protocol(
            OrderPreservingRenaming,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=1),
            adversary=make_adversary("id-forging"),
            seed=1,
            collect_trace=True,
        )
        bound = SystemParams(n, t).accepted_bound
        sizes = [
            len(e.detail)
            for e in result.trace.select(event="accepted")
            if e.process in result.correct
        ]
        assert max(sizes) == bound


class TestConstantTimeLargeScale:
    @pytest.mark.parametrize("t", [4, 5])
    def test_boundary_at_larger_t(self, t):
        n = t * t + 2 * t + 1
        result = run_protocol(
            ConstantTimeRenaming,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=0),
            adversary=make_adversary("id-forging"),
            seed=0,
        )
        assert_renaming_ok(result, n, context=f"constant t={t}")
        assert result.metrics.round_count == 8


class TestAlg4LargeScale:
    @pytest.mark.parametrize("n,t", [(37, 4), (56, 5)])
    def test_fast_regime_at_scale(self, n, t):
        params = SystemParams(n, t)
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=0),
            adversary=make_adversary("selective-echo"),
            seed=0,
        )
        assert_renaming_ok(result, params.fast_namespace_bound)
        assert result.metrics.round_count == 2

    def test_discrepancy_bound_at_scale(self):
        n, t = 37, 4
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=make_ids("uniform", n, seed=0),
            adversary=make_adversary("selective-echo"),
            seed=0,
        )
        estimates = {}
        for index in result.correct:
            for identifier, name in result.processes[index].new_names.items():
                estimates.setdefault(identifier, []).append(name)
        correct_ids = {result.ids[i] for i in result.correct}
        worst = max(
            max(values) - min(values)
            for identifier, values in estimates.items()
            if identifier in correct_ids
        )
        assert worst <= 2 * t * t
