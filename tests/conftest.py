"""Pytest fixtures for the test suite.

Importable helpers live in tests/helpers.py; this file only registers
fixtures (pytest loads it by path, so it must not be imported by name).
"""

from __future__ import annotations

import pytest

from helpers import standard_ids


@pytest.fixture
def ids7():
    """Seven evenly spaced ids (the canonical N=7, t=2 configuration)."""
    return standard_ids(7)


@pytest.fixture
def ids11():
    """Eleven evenly spaced ids (the canonical N=11, t=2 configuration for
    Alg. 4, which needs N > 2t^2 + t)."""
    return standard_ids(11)
