"""Cross-engine differential contract for the system-model axis.

Model injectors sit at the same hook point in every engine as chaos (after
``adversary.send``, before routing), so a seeded :class:`SystemModel` must
produce bit-for-bit identical behaviour on every registered engine —
reference, batched, and (when numpy is present) vector. Identical means
identical *everything*: outputs, traces, metrics, the injector's
:class:`ModelReport`, and even identical typed failures when a degraded
network trips a protocol invariant. Degenerate models (``classic``,
``impersonation:k=0``, ``partial-synchrony:rate=0``) must be bit-for-bit
indistinguishable from no model at all.

The tier-1 slice covers a handful of (algorithm, model, seed) cells; the
``slow`` grid sweeps 20 seeds per cell for the nightly job.
"""

from __future__ import annotations

import pytest

from helpers import assert_runs_identical, run_registered, standard_ids
from repro.adversary import make_adversary
from repro.analysis import ALGORITHMS
from repro.sim import ENGINES, FaultPlan, SimulationError, SystemModel, run_protocol
from repro.wire import WireError

MODELS = [
    SystemModel.impersonation(1),
    SystemModel.impersonation(4, seed=3),
    SystemModel.partial_synchrony(0.05, max_delay=2),
    SystemModel.partial_synchrony(0.2, max_delay=1, seed=7),
    SystemModel.partial_synchrony(0.1, max_delay=0, seed=2),  # pure omission
]

INERT_MODELS = [
    SystemModel.classic(),
    SystemModel.impersonation(0),
    SystemModel.partial_synchrony(0.0),
]

# (algorithm, n, t, attack) cells the grids run over; covers both paper
# algorithms, a crash-tolerant baseline, and a full-information protocol.
CELLS = [
    ("alg1", 7, 2, "silent"),
    ("okun-crash", 5, 1, "crash"),
    ("floodset", 5, 1, "silent"),
]


def _model_run(algorithm, n, t, *, attack, seed, engine, model, chaos=None,
               max_rounds=64):
    """Run one registered algorithm under a model; errors become data."""
    spec = ALGORITHMS[algorithm]
    ids = standard_ids(n)
    try:
        result = run_protocol(
            spec.build_factory(n, t, ids, seed),
            n=n,
            t=t,
            ids=ids,
            adversary=make_adversary(attack) if t > 0 else None,
            seed=seed,
            engine=engine,
            model=model,
            chaos=chaos,
            max_rounds=max_rounds,
            collect_trace=True,
        )
    except (SimulationError, WireError) as exc:
        return ("error", type(exc).__name__, str(exc))
    return ("ok", result)


def _assert_engines_agree(algorithm, n, t, *, attack, seed, model, chaos=None):
    outcomes = {
        engine: _model_run(
            algorithm, n, t, attack=attack, seed=seed, engine=engine,
            model=model, chaos=chaos,
        )
        for engine in ENGINES
    }
    ref = outcomes.pop("reference")
    ref_report = (
        ref[1].model.as_dict() if ref[0] == "ok" and ref[1].model else None
    )
    for other_engine, other in sorted(outcomes.items()):
        context = (
            f"{algorithm} n={n} t={t} attack={attack} seed={seed} "
            f"model={model.describe()} engines=reference/{other_engine}"
        )
        assert ref[0] == other[0], f"{context}: {ref[0]} vs {other[0]}"
        if ref[0] == "error":
            assert ref[1:] == other[1:], context
            continue
        assert_runs_identical(ref[1], other[1], context)
        other_report = other[1].model.as_dict() if other[1].model else None
        assert ref_report == other_report, context


class TestInertModelIdentity:
    """Degenerate models must be bit-for-bit the same as model=None,
    on every engine — the ISSUE's hard constraint."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "model", INERT_MODELS, ids=lambda m: m.describe() or m.kind
    )
    @pytest.mark.parametrize("algorithm,n,t,attack", CELLS[:2])
    def test_inert_model_is_a_no_op(self, algorithm, n, t, attack, model, engine):
        baseline = run_registered(
            algorithm, n, t, attack=attack, seed=0, engine=engine
        )
        status, with_model = _model_run(
            algorithm, n, t, attack=attack, seed=0, engine=engine,
            model=model, max_rounds=1000,
        )
        assert status == "ok"
        assert with_model.model is None, "inert model must not install a hook"
        assert_runs_identical(
            baseline, with_model, f"{algorithm} {model.describe()} on {engine}"
        )


class TestModelDifferential:
    """Tier-1 slice: every model on every cell, one seed."""

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.describe())
    @pytest.mark.parametrize(
        "algorithm,n,t,attack", CELLS, ids=[c[0] for c in CELLS]
    )
    def test_engines_agree_under_model(self, algorithm, n, t, attack, model):
        _assert_engines_agree(
            algorithm, n, t, attack=attack, seed=0, model=model
        )

    def test_engines_agree_under_model_plus_chaos(self):
        # Model and chaos compose at the same hook point; the composed
        # perturbation must stay engine-identical too.
        _assert_engines_agree(
            "alg1", 7, 2, attack="silent", seed=0,
            model=SystemModel.impersonation(2),
            chaos=FaultPlan(seed=5, drop=0.2),
        )

    @pytest.mark.parametrize("engine", sorted(set(ENGINES) - {"reference"}))
    def test_model_report_counts_are_engine_independent(self, engine):
        model = SystemModel.partial_synchrony(0.15, max_delay=2, seed=1)
        status, ref = _model_run(
            "floodset", 5, 1, attack="silent", seed=0, engine="reference",
            model=model,
        )
        assert status == "ok"
        assert ref.model is not None and ref.model.injected > 0
        status, other = _model_run(
            "floodset", 5, 1, attack="silent", seed=0, engine=engine,
            model=model,
        )
        assert status == "ok"
        assert other.model.as_dict() == ref.model.as_dict()


@pytest.mark.slow
class TestModelDifferentialGrid:
    """Nightly: the full algorithm × model × 20-seed grid."""

    SEEDS = range(20)

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.describe())
    @pytest.mark.parametrize(
        "algorithm,n,t,attack", CELLS, ids=[c[0] for c in CELLS]
    )
    def test_grid_engines_agree(self, algorithm, n, t, attack, model):
        for seed in self.SEEDS:
            _assert_engines_agree(
                algorithm, n, t, attack=attack, seed=seed, model=model
            )
