"""Direct property test of Lemma A.2 (the multiset-pairing lemma).

Lemma A.2: build two multisets U, W by inserting k pairs (a, pair(a)) with
a + δ ≤ pair(a); after sorting both, the i-th elements still satisfy
u_i + δ ≤ w_i for every i. It is the combinatorial heart of Lemma A.3
(δ-spacing survives the approximate fold), so it deserves its own
hypothesis-driven check against the obvious direct formalisation.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

DELTA = Fraction(28, 27)

pairs_strategy = st.lists(
    st.tuples(
        st.fractions(min_value=-100, max_value=100),
        st.fractions(min_value=0, max_value=50),
    ),
    min_size=1,
    max_size=20,
)


@given(pairs=pairs_strategy)
def test_lemma_a2_sorted_pairing(pairs):
    u_multiset = []
    w_multiset = []
    for low, extra in pairs:
        u_multiset.append(low)
        w_multiset.append(low + DELTA + extra)  # pair(a) ≥ a + δ
    u_sorted = sorted(u_multiset)
    w_sorted = sorted(w_multiset)
    for u_i, w_i in zip(u_sorted, w_sorted):
        assert u_i + DELTA <= w_i


@given(pairs=pairs_strategy, data=st.data())
def test_lemma_a2_fails_without_pair_discipline(pairs, data):
    """Sanity inverse: if one pair violates the δ constraint the conclusion
    can fail — the lemma's hypothesis is load-bearing, not decorative."""
    if len(pairs) != 1:
        return
    (low, _extra) = pairs[0]
    u_sorted = [low]
    w_sorted = [low + DELTA / 2]  # violates a + δ ≤ pair(a)
    assert not all(u + DELTA <= w for u, w in zip(u_sorted, w_sorted))


@given(
    pairs=pairs_strategy,
    byzantine=st.lists(
        st.fractions(min_value=-1000, max_value=1000), max_size=4
    ),
)
def test_lemma_a2_extends_to_equal_insertions(pairs, byzantine):
    """The form Lemma A.3 actually uses: both multisets additionally receive
    the same number of δ-respecting fill values (the 'fill with own vote'
    step), and the conclusion still holds."""
    u_multiset = []
    w_multiset = []
    for low, extra in pairs:
        u_multiset.append(low)
        w_multiset.append(low + DELTA + extra)
    for fill in byzantine:
        u_multiset.append(fill)
        w_multiset.append(fill + DELTA)
    u_sorted = sorted(u_multiset)
    w_sorted = sorted(w_multiset)
    for u_i, w_i in zip(u_sorted, w_sorted):
        assert u_i + DELTA <= w_i
