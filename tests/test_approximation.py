"""Unit and property tests for the approximate voting step (Alg. 3)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    approximate,
    average,
    nearest_int,
    select_every_t,
    trim_extremes,
)

fractions_st = st.fractions(min_value=-1000, max_value=1000)


class TestTrimExtremes:
    def test_removes_t_from_each_side(self):
        assert trim_extremes([5, 1, 9, 3, 7], 1) == [3, 5, 7]

    def test_zero_trim_sorts_only(self):
        assert trim_extremes([3, 1, 2], 0) == [1, 2, 3]

    def test_requires_enough_values(self):
        with pytest.raises(ValueError):
            trim_extremes([1, 2], 1)
        with pytest.raises(ValueError):
            trim_extremes([1, 2, 3, 4], 2)

    def test_duplicates_removed_as_multiset(self):
        assert trim_extremes([1, 1, 1, 5, 9, 9, 9], 2) == [1, 5, 9]

    @given(st.lists(fractions_st, min_size=5, max_size=20), st.integers(0, 2))
    def test_result_within_input_range(self, values, t):
        if len(values) <= 2 * t:
            return
        survivors = trim_extremes(values, t)
        assert len(survivors) == len(values) - 2 * t
        assert min(values) <= survivors[0] and survivors[-1] <= max(values)


class TestSelectEveryT:
    def test_selects_every_t_th_from_smallest(self):
        assert select_every_t([1, 2, 3, 4, 5], 2) == [1, 3, 5]

    def test_stride_one_selects_all(self):
        assert select_every_t([1, 2, 3], 1) == [1, 2, 3]

    def test_zero_selects_all(self):
        assert select_every_t([4, 5, 6], 0) == [4, 5, 6]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_every_t([], 1)

    def test_always_contains_smallest(self):
        assert select_every_t([7, 8, 9, 10], 3)[0] == 7

    @given(st.lists(fractions_st, min_size=1, max_size=30).map(sorted),
           st.integers(1, 5))
    def test_count_formula(self, ordered, t):
        selected = select_every_t(ordered, t)
        assert len(selected) == (len(ordered) - 1) // t + 1


class TestAverage:
    def test_exact_mean(self):
        assert average([Fraction(1), Fraction(2)]) == Fraction(3, 2)

    @given(st.lists(fractions_st, min_size=1, max_size=10))
    def test_mean_within_range(self, values):
        mean = average(values)
        assert min(values) <= mean <= max(values)


class TestNearestInt:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (Fraction(3), 3),
            (Fraction(10, 3), 3),
            (Fraction(11, 3), 4),
            (Fraction(7, 2), 4),  # ties round up
            (Fraction(-7, 2), -3),
            (Fraction(0), 0),
        ],
    )
    def test_rounding(self, value, expected):
        assert nearest_int(value) == expected

    def test_float_input(self):
        assert nearest_int(4.4) == 4
        assert nearest_int(4.6) == 5

    @given(fractions_st)
    def test_within_half(self, value):
        assert abs(nearest_int(value) - value) <= Fraction(1, 2)


def vote(ranks):
    return {identifier: Fraction(rank) for identifier, rank in ranks.items()}


class TestApproximate:
    """n=7, t=2 unless stated: threshold N−t = 5, trim 2, select stride 2."""

    def test_insufficient_support_drops_id(self):
        my = vote({10: 1, 20: 2})
        votes = [vote({10: 1}) for _ in range(5)] + [vote({10: 1, 20: 2})] * 2
        new_ranks, accepted = approximate(my, {10, 20}, votes, 7, 2)
        assert accepted == {10}
        assert 20 not in new_ranks

    def test_unanimous_votes_fixed_point(self):
        my = vote({10: 1, 20: 2})
        votes = [vote({10: 1, 20: 2})] * 5
        new_ranks, accepted = approximate(my, {10, 20}, votes, 7, 2)
        assert new_ranks == my
        assert accepted == {10, 20}

    def test_fill_with_own_value(self):
        # 5 votes at 0 plus 2 fills with own value 7:
        # sorted [0,0,0,0,0,7,7] -> trim 2 -> [0,0,0] -> select [0,0] -> 0.
        my = vote({10: 7})
        votes = [vote({10: 0})] * 5
        new_ranks, _ = approximate(my, {10}, votes, 7, 2)
        assert new_ranks[10] == 0

    def test_outliers_trimmed(self):
        # 5 honest votes at 3, 2 extreme votes: extremes must vanish.
        my = vote({10: 3})
        votes = [vote({10: 3})] * 5 + [vote({10: 1000}), vote({10: -1000})]
        new_ranks, _ = approximate(my, {10}, votes, 7, 2)
        assert new_ranks[10] == 3

    def test_result_within_honest_range_despite_byzantine(self):
        honest = [Fraction(1), Fraction(2), Fraction(3), Fraction(4), Fraction(5)]
        my = vote({10: 3})
        votes = [vote({10: v}) for v in honest]
        votes += [vote({10: 10**6}), vote({10: -(10**6)})]
        new_ranks, _ = approximate(my, {10}, votes, 7, 2)
        assert Fraction(1) <= new_ranks[10] <= Fraction(5)

    def test_excess_votes_capped_at_n(self):
        my = vote({10: 3})
        votes = [vote({10: 3})] * 20
        new_ranks, _ = approximate(my, {10}, votes, 7, 2)
        assert new_ranks[10] == 3

    def test_crash_variant_plain_average(self):
        my = vote({10: 0})
        votes = [vote({10: v}) for v in (0, 0, 0, 4, 4)]
        new_ranks, _ = approximate(my, {10}, votes, 7, 2, trim=0)
        # 5 votes + 2 own fills at 0 -> mean of [0,0,0,4,4,0,0] = 8/7.
        assert new_ranks[10] == Fraction(8, 7)

    def test_votes_missing_id_do_not_count(self):
        my = vote({10: 1, 20: 2})
        full = [vote({10: 1, 20: 2})] * 5
        partial = [vote({10: 1})] * 2
        _, accepted = approximate(my, {10, 20}, full + partial, 7, 2)
        assert accepted == {10, 20}

    @given(
        honest=st.lists(fractions_st, min_size=5, max_size=5),
        byzantine=st.lists(fractions_st, min_size=2, max_size=2),
    )
    def test_lemma_iv8_range_containment(self, honest, byzantine):
        """New value always lies within the range of the honest votes —
        the second half of Lemma IV.8, for any Byzantine values."""
        my = vote({10: honest[0]})
        votes = [vote({10: v}) for v in honest + byzantine]
        new_ranks, _ = approximate(my, {10}, votes, 7, 2)
        assert min(honest) <= new_ranks[10] <= max(honest)

    @given(
        shared=st.lists(fractions_st, min_size=5, max_size=5),
        byz_a=st.lists(fractions_st, min_size=2, max_size=2),
        byz_b=st.lists(fractions_st, min_size=2, max_size=2),
    )
    def test_lemma_iv8_contraction(self, shared, byz_a, byz_b):
        """Two processes sharing the 5 honest votes but fed different
        Byzantine pairs end within spread/sigma of each other (sigma=2)."""
        my_a = vote({10: shared[0]})
        my_b = vote({10: shared[1]})
        ranks_a, _ = approximate(
            my_a, {10}, [vote({10: v}) for v in shared + byz_a], 7, 2
        )
        ranks_b, _ = approximate(
            my_b, {10}, [vote({10: v}) for v in shared + byz_b], 7, 2
        )
        spread = max(shared) - min(shared)
        assert abs(ranks_a[10] - ranks_b[10]) <= spread / 2


class TestApproximatePairwise:
    @given(
        base=st.lists(fractions_st, min_size=5, max_size=5),
        gap=st.fractions(min_value="1/10", max_value=10),
    )
    def test_lemma_a3_spacing_preserved(self, base, gap):
        """Votes that rank id' at least `gap` above id keep the new ranks
        spaced by at least `gap` — Lemma A.3 with the honest vote set."""
        my = {10: base[0], 20: base[0] + gap}
        votes = [vote({10: v, 20: v + gap}) for v in base]
        new_ranks, _ = approximate(my, {10, 20}, votes, 7, 2)
        assert new_ranks[20] - new_ranks[10] >= gap
