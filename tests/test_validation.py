"""Unit and property tests for the isValid vote filter (Alg. 2)."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.core import SystemParams, is_valid_ranks

DELTA = SystemParams(7, 2).delta


def spaced_ranks(ids, delta=DELTA, start=Fraction(1)):
    return {identifier: start + index * delta for index, identifier in enumerate(ids)}


class TestIsValid:
    def test_accepts_exact_delta_spacing(self):
        ranks = spaced_ranks([10, 20, 30])
        assert is_valid_ranks([10, 20, 30], ranks, DELTA)

    def test_accepts_wider_spacing(self):
        ranks = spaced_ranks([10, 20, 30], delta=2 * DELTA)
        assert is_valid_ranks([10, 20, 30], ranks, DELTA)

    def test_rejects_missing_timely_id(self):
        ranks = spaced_ranks([10, 30])
        assert not is_valid_ranks([10, 20, 30], ranks, DELTA)

    def test_rejects_too_tight_spacing(self):
        ranks = {10: Fraction(1), 20: Fraction(1) + DELTA / 2}
        assert not is_valid_ranks([10, 20], ranks, DELTA)

    def test_rejects_inverted_order(self):
        ranks = {10: Fraction(5), 20: Fraction(1)}
        assert not is_valid_ranks([10, 20], ranks, DELTA)

    def test_rejects_equal_ranks(self):
        ranks = {10: Fraction(3), 20: Fraction(3)}
        assert not is_valid_ranks([10, 20], ranks, DELTA)

    def test_extra_non_timely_ids_unconstrained(self):
        # Ranks may contain ids outside timely in any arrangement.
        ranks = spaced_ranks([10, 20, 30])
        ranks[99] = Fraction(-100)
        ranks[98] = ranks[10]  # clashes with a timely rank but 98 not timely
        assert is_valid_ranks([10, 20, 30], ranks, DELTA)

    def test_empty_timely_accepts_anything(self):
        assert is_valid_ranks([], {}, DELTA)
        assert is_valid_ranks([], {5: Fraction(1)}, DELTA)

    def test_single_timely_id_needs_presence_only(self):
        assert is_valid_ranks([10], {10: Fraction(-5)}, DELTA)
        assert not is_valid_ranks([10], {}, DELTA)

    def test_float_tolerance(self):
        delta = float(DELTA)
        ranks = {10: 1.0, 20: 1.0 + delta - 1e-12}
        assert not is_valid_ranks([10, 20], ranks, delta)
        assert is_valid_ranks([10, 20], ranks, delta, tolerance=1e-9)

    def test_duplicate_timely_entries_deduplicated(self):
        ranks = spaced_ranks([10, 20])
        assert is_valid_ranks([10, 10, 20], ranks, DELTA)


class TestIsValidProperties:
    @given(
        ids=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1,
                     max_size=12, unique=True),
        start=st.fractions(min_value=-100, max_value=100),
    )
    def test_honest_construction_always_valid(self, ids, start):
        """Any δ-spaced layout over the timely set passes — the Lemma IV.4
        shape: correct processes always produce valid votes."""
        ranks = spaced_ranks(sorted(ids), start=start)
        assert is_valid_ranks(ids, ranks, DELTA)

    @given(
        ids=st.lists(st.integers(min_value=1, max_value=10**6), min_size=2,
                     max_size=12, unique=True),
        shift=st.fractions(min_value=-1000, max_value=1000),
    )
    def test_uniform_shift_preserves_validity(self, ids, shift):
        """Uniform shifts keep spacing — the RankSkew attack is valid traffic."""
        ranks = spaced_ranks(sorted(ids))
        shifted = {identifier: rank + shift for identifier, rank in ranks.items()}
        assert is_valid_ranks(ids, shifted, DELTA)

    @given(
        ids=st.lists(st.integers(min_value=1, max_value=10**6), min_size=2,
                     max_size=12, unique=True),
        data=st.data(),
    )
    def test_swapping_any_adjacent_pair_invalidates(self, ids, data):
        """Every pairwise inversion is caught (the OrderInversion attack is
        always filtered)."""
        ordered = sorted(ids)
        ranks = spaced_ranks(ordered)
        position = data.draw(st.integers(min_value=0, max_value=len(ordered) - 2))
        a, b = ordered[position], ordered[position + 1]
        ranks[a], ranks[b] = ranks[b], ranks[a]
        assert not is_valid_ranks(ids, ranks, DELTA)

    @given(
        ids=st.lists(st.integers(min_value=1, max_value=10**6), min_size=2,
                     max_size=10, unique=True),
        data=st.data(),
    )
    def test_dropping_any_timely_id_invalidates(self, ids, data):
        ranks = spaced_ranks(sorted(ids))
        victim = data.draw(st.sampled_from(sorted(ids)))
        del ranks[victim]
        assert not is_valid_ranks(ids, ranks, DELTA)
