"""Unit tests for the numpy-backed vector engine and its lazy inboxes.

The behavioural contract (vector ≡ reference across the full algorithm ×
attack × seed grid, under chaos, through the wire) lives in
``test_engine_differential.py`` and ``test_chaos_differential.py`` — those
suites iterate ``engine_names()`` and pick the vector engine up
automatically. This file covers what the differential grids cannot see
from the outside:

* :class:`VectorInbox` Mapping semantics against a plain dict oracle —
  contents, ascending-link iteration, ``KeyError`` behaviour (including
  numpy's negative-index trap), equality, bool-key aliasing;
* retained-inbox stability: a delivered view must keep showing its own
  round after later rounds rebuild the dense layer;
* mixed dense/overlay rounds (broadcast + targeted sends in one round)
  observed from *inside* ``deliver`` via inbox snapshots;
* the shared :meth:`RunMetrics.observe_send` accounting primitive
  producing identical counters on all three engines;
* the optional-dependency gate: an unregistered vector engine resolves to
  a :class:`ConfigurationError` that names numpy.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

import repro.sim.engine as engine_mod
from helpers import assert_runs_identical, standard_ids
from repro.core.messages import IdMessage
from repro.sim import (
    BROADCAST,
    ConfigurationError,
    Process,
    engine_names,
    resolve_engine,
    run_protocol,
)
from repro.sim.engine_vector import VectorInbox

ALL_ENGINES = tuple(engine_names())


def _make_inbox():
    """Process 0 of n=3: link 1 -> peer 1, link 2 -> peer 2, link 3 -> self.

    Peer 0 (self) broadcast ``a``; peer 2's traffic arrived via the scalar
    overlay as ``b``; peer 1 sent nothing. Expected view: {2: (b,), 3: (a,)}.
    """
    a, b = IdMessage(10), IdMessage(20)
    peer_row = np.array([0, 1, 2, 0], dtype=np.intp)
    dense = [(a,), None, None]
    dense_mask = np.array([True, False, False])
    inbox = VectorInbox(peer_row, dense, dense_mask, {2: (b,)})
    return inbox, {2: (b,), 3: (a,)}


class TestVectorInboxMapping:
    def test_contents_match_dict_oracle(self):
        inbox, oracle = _make_inbox()
        assert dict(inbox) == oracle
        assert list(inbox) == sorted(oracle)  # ascending link order
        assert len(inbox) == len(oracle)
        assert inbox.keys() == oracle.keys()
        assert sorted(inbox.items()) == sorted(oracle.items())

    def test_equality_both_ways(self):
        inbox, oracle = _make_inbox()
        assert inbox == oracle
        assert oracle == inbox
        assert inbox != {**oracle, 1: (IdMessage(9),)}
        assert inbox != {}
        assert inbox != "not a mapping"

    def test_missing_links_raise_keyerror(self):
        inbox, _ = _make_inbox()
        for bad in (0, 1, 4, 99, BROADCAST, "2", None):
            with pytest.raises(KeyError):
                inbox[bad]
            assert inbox.get(bad) is None

    def test_negative_links_do_not_wrap_around(self):
        # Plain dicts have no key -1; numpy rows index from the end. The
        # guard must keep dict semantics.
        inbox, _ = _make_inbox()
        with pytest.raises(KeyError):
            inbox[-1]

    def test_bool_key_aliases_link_one(self):
        # dict semantics: d[True] is d[1]. Link 1 carries dense traffic
        # here, so True must resolve to it.
        a = IdMessage(1)
        peer_row = np.array([0, 1, 0], dtype=np.intp)
        inbox = VectorInbox(
            peer_row, [None, (a,)], np.array([False, True]), None
        )
        assert inbox[1] == (a,)
        assert inbox[True] == (a,)


class _RetainsInbox(Process):
    """Broadcasts a round-tagged message; snapshots every inbox and checks
    previously retained views never change as later rounds are routed."""

    ROUNDS = 4

    def __init__(self, ctx):
        super().__init__(ctx)
        self.retained = []  # [(inbox, frozen snapshot), ...]

    def send(self, round_no):
        return self.broadcast(IdMessage(self.ctx.my_id * 100 + round_no))

    def deliver(self, round_no, inbox):
        for view, snapshot in self.retained:
            assert dict(view) == snapshot, "retained inbox mutated"
        self.retained.append((inbox, dict(inbox)))
        if round_no == self.ROUNDS:
            self.output_value = self.ctx.my_id


def test_retained_inboxes_survive_later_rounds():
    result = run_protocol(
        _RetainsInbox, n=4, t=0, ids=standard_ids(4), seed=0, engine="vector"
    )
    for process in result.processes.values():
        assert len(process.retained) == _RetainsInbox.ROUNDS
        # Each round's view shows that round's messages, not the last one's.
        for round_index, (_, snapshot) in enumerate(process.retained, start=1):
            tags = {m.id % 100 for msgs in snapshot.values() for m in msgs}
            assert tags == {round_index}


class _MixedSender(Process):
    """Broadcast + targeted point-to-point in one outbox (dense layer and
    scalar overlay compose in the same round); snapshots what arrives."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.seen = []

    def send(self, round_no):
        outbox = self.broadcast(IdMessage(self.ctx.my_id))
        if round_no == 2:
            # Everyone also pokes link 1 directly — and the id-10 process
            # goes overlay-only that round (no broadcast at all).
            if self.ctx.my_id == 10:
                return {1: [IdMessage(-1)], 2: [IdMessage(-2), IdMessage(-2)]}
            outbox[1] = [IdMessage(-self.ctx.my_id)]
        return outbox

    def deliver(self, round_no, inbox):
        self.seen.append((round_no, {k: tuple(inbox[k]) for k in inbox}))
        if round_no == 3:
            self.output_value = self.ctx.my_id


def test_mixed_dense_and_overlay_rounds_match_reference():
    runs = {}
    for engine in ALL_ENGINES:
        runs[engine] = run_protocol(
            _MixedSender, n=5, t=0, ids=standard_ids(5), seed=0,
            engine=engine, collect_trace=True,
        )
    reference = runs["reference"]
    for engine, run in runs.items():
        if engine == "reference":
            continue
        assert_runs_identical(reference, run, f"mixed/{engine}")
        for index in reference.processes:
            assert (
                run.processes[index].seen == reference.processes[index].seen
            ), f"inbox snapshots diverge on {engine} for process {index}"


def test_observe_send_counters_identical_across_engines():
    """Satellite regression: all engines account through one primitive, so
    every traffic counter agrees to the bit."""
    from helpers import run_registered

    runs = {
        engine: run_registered(
            "alg4", 11, 2, attack="selective-echo", seed=5, engine=engine
        )
        for engine in ALL_ENGINES
    }
    reference = runs["reference"].metrics
    for engine, run in runs.items():
        metrics = run.metrics
        assert metrics.correct_messages == reference.correct_messages, engine
        assert metrics.correct_bits == reference.correct_bits, engine
        assert metrics.byzantine_messages == reference.byzantine_messages, engine
        assert metrics.peak_message_bits == reference.peak_message_bits, engine
        assert [
            (r.round_no, r.correct_messages, r.correct_bits, r.byzantine_messages)
            for r in metrics.rounds
        ] == [
            (r.round_no, r.correct_messages, r.correct_bits, r.byzantine_messages)
            for r in reference.rounds
        ], engine


def test_unregistered_vector_engine_explains_missing_numpy(monkeypatch):
    """Simulate a numpy-less install: with the registry entry gone,
    resolve_engine('vector') must name the missing dependency."""
    monkeypatch.delitem(engine_mod.ENGINES, "vector")
    assert "vector" not in engine_names()
    with pytest.raises(ConfigurationError, match="requires numpy"):
        resolve_engine("vector")


def test_vector_engine_registered_and_resolvable():
    assert "vector" in engine_names()
    assert resolve_engine("vector").name == "vector"
