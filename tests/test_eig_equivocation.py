"""Targeted EIG attack: equivocating relays about a victim's value.

The classic hard case for exponential information gathering: a Byzantine
source claims different values to different processes, and a Byzantine
relay amplifies the confusion by lying about what it heard. EIG's majority
resolution over ``t + 1`` levels must still land every correct process on
the *same* vector (agreement), with correct processes' entries exact
(validity).
"""

from __future__ import annotations

from helpers import standard_ids
from repro import run_protocol
from repro.agreement import EIGInteractiveConsistency, make_identified_factory
from repro.agreement.eig import RelayMessage
from repro.sim import Adversary


class EquivocatingEIGAdversary(Adversary):
    """Slot A announces per-recipient values; slot B relays contradictions.

    Implemented against the identified model the EIG baseline runs in: the
    adversary knows its slots' global indices (they are the slot numbers)
    and fabricates tree entries accordingly.
    """

    def send(self, round_no, correct_outboxes):
        outboxes = {}
        liar, relay = self.ctx.byzantine[0], self.ctx.byzantine[-1]
        for slot in self.ctx.byzantine:
            outbox = {}
            for peer in self.ctx.correct:
                link = self.ctx.topology.label_of(slot, peer)
                if round_no == 1:
                    # Level-0 claims: the liar equivocates per peer parity.
                    value = 100 + (peer % 2) if slot == liar else 7
                    outbox[link] = [RelayMessage(entries=(((), value),))]
                else:
                    # Later levels: relay contradictory reports about the
                    # liar's claim, plus garbage about a correct process.
                    victim = self.ctx.correct[0]
                    entries = (
                        ((liar,) * (round_no - 1), 200 + peer % 2),
                        ((victim,) + (liar,) * (round_no - 2), 999)
                        if round_no >= 2
                        else ((liar,), 200),
                    )
                    outbox[link] = [RelayMessage(entries=entries)]
            outboxes[slot] = outbox
        return outboxes


class TestEIGEquivocation:
    def run_eig(self, seed):
        n, t = 7, 2
        ids = standard_ids(n)
        values = {identifier: identifier for identifier in ids}
        factory = make_identified_factory(
            n,
            ids,
            seed,
            lambda ctx, me, links: EIGInteractiveConsistency(
                ctx, me, links, value=values[ctx.my_id]
            ),
        )
        return run_protocol(
            factory,
            n=n,
            t=t,
            ids=ids,
            byzantine=[0, 3],
            adversary=EquivocatingEIGAdversary(),
            seed=seed,
        )

    def test_agreement_despite_equivocation(self):
        for seed in range(4):
            result = self.run_eig(seed)
            vectors = {result.outputs[i] for i in result.correct}
            assert len(vectors) == 1, f"seed={seed}: split vectors {vectors}"

    def test_validity_for_correct_entries(self):
        result = self.run_eig(0)
        vector = next(iter(result.outputs[i] for i in result.correct))
        for index in result.correct:
            assert vector[index] == result.ids[index]

    def test_consensus_renaming_survives_equivocation(self):
        from helpers import assert_renaming_ok
        from repro.baselines import consensus_renaming_factory

        n, t = 7, 2
        ids = standard_ids(n)
        for seed in range(3):
            result = run_protocol(
                consensus_renaming_factory(n, ids, seed),
                n=n,
                t=t,
                ids=ids,
                byzantine=[0, 3],
                adversary=EquivocatingEIGAdversary(),
                seed=seed,
            )
            assert_renaming_ok(result, n, context=f"seed={seed}")
