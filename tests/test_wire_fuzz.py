"""Codec robustness: arbitrary bytes must never escape as non-WireError.

A decoder that throws IndexError/RecursionError/MemoryError on crafted
input is a denial-of-service primitive; `decode_message` must map every
malformed buffer to :class:`WireError` and nothing else.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import WireError, decode_message, encode_message


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=200))
def test_decode_never_crashes(data):
    try:
        message = decode_message(data)
    except WireError:
        return
    # Anything that decodes must re-encode to the same bytes (canonical
    # encodings only) — or at least to an equal message.
    assert decode_message(encode_message(message)) == message


@settings(max_examples=100, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=100),
    flips=st.lists(st.integers(min_value=0, max_value=99), max_size=4),
)
def test_bitflips_on_valid_messages(data, flips):
    """Corrupting a valid encoding yields WireError or a decodable message —
    never an unexpected exception."""
    from repro.core.messages import MultiEchoMessage

    encoded = bytearray(encode_message(MultiEchoMessage.from_ids([1, 5, 9])))
    for flip in flips:
        position = flip % len(encoded)
        encoded[position] ^= 0xFF
    try:
        decode_message(bytes(encoded))
    except WireError:
        pass


def test_huge_length_prefix_rejected_quickly():
    """A length prefix claiming 2^60 entries must fail fast (truncation),
    not attempt a giant allocation."""
    from repro.wire import write_varint

    out = bytearray([16])  # RanksMessage tag
    write_varint(2**60, out)
    with pytest.raises(WireError):
        decode_message(bytes(out))


def _nested_envelope_bytes(depth):
    """tag21, mux-tag0 repeated ``depth`` times around one IdMessage(7)."""
    return bytes([21, 0] * depth) + bytes([0, 7])


class TestEnvelopeNesting:
    def test_legitimate_nesting_roundtrips(self):
        from repro.core.messages import IdMessage
        from repro.sim.compose import EnvelopeMessage

        message = IdMessage(7)
        for _ in range(5):
            message = EnvelopeMessage(tag=0, payload=message)
        assert decode_message(encode_message(message)) == message
        assert decode_message(_nested_envelope_bytes(5)) == message

    def test_depth_bomb_is_a_typed_error_not_recursion(self):
        """10k nested envelope tags: 20 kB of input that would otherwise
        recurse once per layer and escape as RecursionError."""
        from repro.wire import MAX_ENVELOPE_DEPTH

        with pytest.raises(WireError, match="nesting deeper"):
            decode_message(_nested_envelope_bytes(10_000))
        # The guard is a depth cap, not a recursion-limit race: one past
        # the cap fails, the cap itself decodes.
        with pytest.raises(WireError, match="nesting deeper"):
            decode_message(_nested_envelope_bytes(MAX_ENVELOPE_DEPTH + 1))
        decode_message(_nested_envelope_bytes(MAX_ENVELOPE_DEPTH))

    def test_depth_counter_resets_after_failure(self):
        """A failed deep decode must not poison subsequent decodes."""
        for _ in range(3):
            with pytest.raises(WireError):
                decode_message(_nested_envelope_bytes(10_000))
            decode_message(_nested_envelope_bytes(5))

    @settings(max_examples=100, deadline=None)
    @given(depth=st.integers(min_value=1, max_value=100), tail=st.binary(max_size=8))
    def test_fuzzed_envelope_streams_stay_typed(self, depth, tail):
        data = bytes([21, 0] * depth) + tail
        try:
            message = decode_message(data)
        except WireError:
            return
        assert decode_message(encode_message(message)) == message


class TestDecoderErrorWrapping:
    def test_zero_denominator_rank_is_wire_error(self):
        from repro.wire import write_varint

        out = bytearray([18])  # ValueMessage tag: rank = 1/0
        out.append(2)  # zigzag(1)
        write_varint(0, out)
        with pytest.raises(WireError, match="zero denominator"):
            decode_message(bytes(out))

    def test_constructor_rejection_is_wrapped(self, monkeypatch):
        """Any ValueError/TypeError a message constructor raises on decoded
        fields must surface as WireError — simulated here by a constructor
        that validates strictly."""
        import repro.wire as wire
        from repro.core.messages import IdMessage

        tag, encoder, _ = wire._CODECS[IdMessage]

        def strict_decode(data, offset):
            raise ValueError("id fails a constructor invariant")

        monkeypatch.setitem(wire._BY_TAG, tag, (IdMessage, strict_decode))
        with pytest.raises(WireError, match="malformed IdMessage"):
            decode_message(encode_message(IdMessage(7)))
