"""Codec robustness: arbitrary bytes must never escape as non-WireError.

A decoder that throws IndexError/RecursionError/MemoryError on crafted
input is a denial-of-service primitive; `decode_message` must map every
malformed buffer to :class:`WireError` and nothing else.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import WireError, decode_message, encode_message


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=200))
def test_decode_never_crashes(data):
    try:
        message = decode_message(data)
    except WireError:
        return
    # Anything that decodes must re-encode to the same bytes (canonical
    # encodings only) — or at least to an equal message.
    assert decode_message(encode_message(message)) == message


@settings(max_examples=100, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=100),
    flips=st.lists(st.integers(min_value=0, max_value=99), max_size=4),
)
def test_bitflips_on_valid_messages(data, flips):
    """Corrupting a valid encoding yields WireError or a decodable message —
    never an unexpected exception."""
    from repro.core.messages import MultiEchoMessage

    encoded = bytearray(encode_message(MultiEchoMessage.from_ids([1, 5, 9])))
    for flip in flips:
        position = flip % len(encoded)
        encoded[position] ^= 0xFF
    try:
        decode_message(bytes(encoded))
    except WireError:
        pass


def test_huge_length_prefix_rejected_quickly():
    """A length prefix claiming 2^60 entries must fail fast (truncation),
    not attempt a giant allocation."""
    from repro.wire import write_varint

    out = bytearray([16])  # RanksMessage tag
    write_varint(2**60, out)
    with pytest.raises(WireError):
        decode_message(bytes(out))
