"""Whole-system property-based tests.

Hypothesis drives random configurations (sizes, seeds, workloads, attacks)
through the full stack and asserts the paper's guarantees hold on every one —
the closest executable statement of Theorems IV.10, V.3 and VI.3.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ConstantTimeRenaming,
    OrderPreservingRenaming,
    SystemParams,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import ALG1_ATTACKS, ALG4_ATTACKS, make_adversary
from repro.analysis import check_renaming
from repro.workloads import make_ids, workload_names

COMMON = dict(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)


def sizes_for(regime):
    """Random (n, t) inside a resilience regime, kept laptop-sized."""

    def build(draw):
        t = draw(st.integers(min_value=1, max_value=3))
        lower = regime(t)
        n = draw(st.integers(min_value=lower, max_value=lower + 4))
        return n, t

    return st.composite(lambda draw: build(draw))()


alg1_sizes = sizes_for(lambda t: 3 * t + 1)
constant_sizes = sizes_for(lambda t: t * t + 2 * t + 1)
fast_sizes = sizes_for(lambda t: 2 * t * t + t + 1)


@settings(**COMMON)
@given(
    size=alg1_sizes,
    seed=st.integers(min_value=0, max_value=10**6),
    workload=st.sampled_from(sorted(workload_names())),
    attack=st.sampled_from(ALG1_ATTACKS),
)
def test_theorem_iv10_randomised(size, seed, workload, attack):
    n, t = size
    ids = make_ids(workload, n, seed=seed)
    result = run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=ids,
        adversary=make_adversary(attack),
        seed=seed,
    )
    params = SystemParams(n, t)
    report = check_renaming(result, params.namespace_bound)
    assert report.ok, (n, t, workload, attack, seed, report.violations)
    assert result.metrics.round_count == params.total_rounds


@settings(**COMMON)
@given(
    size=constant_sizes,
    seed=st.integers(min_value=0, max_value=10**6),
    attack=st.sampled_from(ALG1_ATTACKS),
)
def test_theorem_v3_randomised(size, seed, attack):
    n, t = size
    ids = make_ids("uniform", n, seed=seed)
    result = run_protocol(
        ConstantTimeRenaming,
        n=n,
        t=t,
        ids=ids,
        adversary=make_adversary(attack),
        seed=seed,
    )
    report = check_renaming(result, n)  # strong namespace
    assert report.ok, (n, t, attack, seed, report.violations)
    assert result.metrics.round_count == 8


@settings(**COMMON)
@given(
    size=fast_sizes,
    seed=st.integers(min_value=0, max_value=10**6),
    workload=st.sampled_from(sorted(workload_names())),
    attack=st.sampled_from(ALG4_ATTACKS),
)
def test_theorem_vi3_randomised(size, seed, workload, attack):
    n, t = size
    ids = make_ids(workload, n, seed=seed)
    result = run_protocol(
        TwoStepRenaming,
        n=n,
        t=t,
        ids=ids,
        adversary=make_adversary(attack),
        seed=seed,
    )
    params = SystemParams(n, t)
    report = check_renaming(result, params.fast_namespace_bound)
    assert report.ok, (n, t, workload, attack, seed, report.violations)
    assert result.metrics.round_count == 2


@settings(**COMMON)
@given(
    size=alg1_sizes,
    seed=st.integers(min_value=0, max_value=10**6),
    attack=st.sampled_from(ALG1_ATTACKS),
)
def test_accepted_bound_randomised(size, seed, attack):
    """Lemma IV.3 as a universal property over the attack library."""
    n, t = size
    ids = make_ids("uniform", n, seed=seed)
    result = run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=ids,
        adversary=make_adversary(attack),
        seed=seed,
        collect_trace=True,
    )
    bound = SystemParams(n, t).accepted_bound
    for event in result.trace.select(event="accepted"):
        if event.process in result.correct:
            assert len(event.detail) <= bound
