"""Property tests of the interval-splitting engine under crash churn.

The crash model's hazard for bit-split renaming is *transiently divergent
views*: a crashing process's final-round claims reach some peers but not
others, after which it is gone. A live process's broadcast always reaches
everyone (reliable channels) — the engine relies on that, so these tests
model exactly crash-shaped churn: each crasher has a crash round, its claim
is visible to a random subset of viewers in that round, and to nobody
afterwards. Survivors must end with unique names; crash-free runs must be
strong and order-preserving.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import IntervalSplitter, interval_rounds


def run_network(ids, namespace, crash_schedule):
    """Drive splitters under a crash schedule.

    ``crash_schedule[identifier] = (crash_round, visible_to)``: the id's
    claim reaches only ``visible_to`` in its crash round and vanishes after.
    Returns decided names of the survivors.
    """
    splitters = {identifier: IntervalSplitter(identifier, namespace) for identifier in ids}
    survivors = [identifier for identifier in ids if identifier not in crash_schedule]
    horizon = interval_rounds(namespace) + len(ids) + 4
    for round_no in range(1, horizon + 1):
        claims = {}
        for identifier, splitter in splitters.items():
            if identifier in crash_schedule:
                crash_round, visible_to = crash_schedule[identifier]
                if round_no > crash_round:
                    continue  # dead: no claims at all
                if round_no == crash_round:
                    claims[identifier] = (splitter.claim(), frozenset(visible_to))
                    continue
            claims[identifier] = (splitter.claim(), None)  # visible to all
        for viewer in survivors:
            splitter = splitters[viewer]
            if splitter.decided is not None:
                continue
            mine = splitter.claim()
            rivals = [
                claimant
                for claimant, (claim, audience) in claims.items()
                if claim == mine and (audience is None or viewer in audience)
            ]
            splitter.resolve(rivals)
        # Crashed processes still advance their own state until they die
        # (they run the protocol correctly up to the crash).
        for identifier, (crash_round, _) in crash_schedule.items():
            if round_no < crash_round:
                splitter = splitters[identifier]
                if splitter.decided is None:
                    mine = splitter.claim()
                    rivals = [
                        claimant
                        for claimant, (claim, audience) in claims.items()
                        if claim == mine
                        and (audience is None or identifier in audience)
                    ]
                    splitter.resolve(rivals)
    return {identifier: splitters[identifier].decided for identifier in survivors}


ids_strategy = st.lists(
    st.integers(min_value=1, max_value=10**4), min_size=3, max_size=10, unique=True
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ids=ids_strategy, data=st.data())
def test_survivor_uniqueness_under_crashes(ids, data):
    crasher_count = data.draw(
        st.integers(min_value=0, max_value=len(ids) - 2), label="crashers"
    )
    crashers = data.draw(
        st.permutations(sorted(ids)), label="order"
    )[:crasher_count]
    schedule = {}
    for crasher in crashers:
        crash_round = data.draw(st.integers(1, 5), label=f"round {crasher}")
        viewers = [i for i in ids if i != crasher]
        visible = {
            viewer
            for viewer in viewers
            if data.draw(st.booleans(), label=f"sees {crasher}->{viewer}")
        }
        schedule[crasher] = (crash_round, visible)
    names = run_network(ids, len(ids), schedule)
    decided = list(names.values())
    assert all(name is not None for name in decided), names
    assert len(set(decided)) == len(decided), names


@settings(max_examples=40, deadline=None)
@given(ids=ids_strategy)
def test_no_crashes_strong_order_preserving(ids):
    names = run_network(ids, len(ids), {})
    for rank, identifier in enumerate(sorted(ids), start=1):
        assert names[identifier] == rank


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ids=ids_strategy, data=st.data())
def test_names_bounded_under_crashes(ids, data):
    """Probing may spill past N, but stays within N + crasher-count — each
    displaced survivor was displaced by at most the contested slots crashers
    transiently occupied."""
    crashers = sorted(ids)[: len(ids) // 2]
    schedule = {}
    for crasher in crashers:
        visible = {
            viewer
            for viewer in ids
            if viewer != crasher and data.draw(st.booleans())
        }
        schedule[crasher] = (data.draw(st.integers(1, 3)), visible)
    names = run_network(ids, len(ids), schedule)
    for name in names.values():
        assert name is not None
        assert 1 <= name <= len(ids) + len(crashers)
