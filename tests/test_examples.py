"""Smoke tests: every example script runs clean and says what it promises.

Examples are documentation that executes; letting them rot defeats their
purpose. Each runs in-process (import-free via runpy, so their module-level
guards work) and must exit without error and print its key claims.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)

EXPECTED_SNIPPETS = {
    "quickstart.py": "order preservation verified",
    "priority_arbitration.py": "no priority inversion",
    "tdma_slot_assignment.py": "assigned in 2 rounds",
    "attack_gallery.py": "attacks absorbed",
    "algorithm_comparison.py": "reading guide",
    "early_deciding.py": "never corrupt a frozen decision",
}


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.name for script in EXAMPLES]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    snippet = EXPECTED_SNIPPETS[script.name]
    assert snippet in out, f"{script.name} lost its conclusion line"


def test_every_example_covered():
    assert {s.name for s in EXAMPLES} == set(EXPECTED_SNIPPETS)


def test_at_least_five_examples():
    assert len(EXAMPLES) >= 5
