"""Tests for the early-deciding extension (the [1] direction).

Safety argument under test: freezing happens only when every valid vote
agreed with the local ranks for two consecutive rounds, which implies all
correct processes hold identical ranks — a fixed point of the trimmed fold
that Byzantine votes cannot move. So freezing can never change any name,
and adversaries can only *delay* it.
"""

from __future__ import annotations

from functools import partial

import pytest

from helpers import assert_renaming_ok, standard_ids
from repro import OrderPreservingRenaming, RenamingOptions, SystemParams, run_protocol
from repro.adversary import ALG1_ATTACKS, make_adversary

EARLY = partial(
    OrderPreservingRenaming, options=RenamingOptions(early_deciding=True)
)


def freeze_rounds(result):
    return {
        e.process: e.round_no
        for e in result.trace.select(event="early_frozen")
        if e.process in result.correct
    }


class TestEarlyDecidingSafety:
    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    def test_properties_hold_with_early_deciding(self, attack):
        n, t = 7, 2
        for seed in (0, 1):
            result = run_protocol(
                EARLY,
                n=n,
                t=t,
                ids=standard_ids(n),
                adversary=make_adversary(attack),
                seed=seed,
            )
            assert_renaming_ok(
                result,
                SystemParams(n, t).namespace_bound,
                context=f"early attack={attack} seed={seed}",
            )

    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    def test_names_identical_to_non_early_run(self, attack):
        """Freezing must never change the outcome: with and without the
        extension, the same run produces the same names."""
        n, t = 7, 2
        base = run_protocol(
            OrderPreservingRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary(attack),
            seed=3,
        )
        early = run_protocol(
            EARLY,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary(attack),
            seed=3,
        )
        assert base.new_names() == early.new_names()


class TestEarlyDecidingLatency:
    def test_benign_runs_freeze_early(self):
        """With silent faults the ranks are unanimous immediately: freezing
        happens well before the scheduled final round at larger t."""
        n, t = 13, 4  # scheduled: 4 + 9 voting rounds
        result = run_protocol(
            EARLY,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary("silent"),
            seed=0,
            collect_trace=True,
        )
        frozen = freeze_rounds(result)
        assert len(frozen) == n - t
        assert max(frozen.values()) <= 7  # froze within 3 voting rounds
        assert max(frozen.values()) < SystemParams(n, t).total_rounds

    def test_all_correct_freeze_same_round_when_benign(self):
        result = run_protocol(
            EARLY,
            n=10,
            t=3,
            ids=standard_ids(10),
            adversary=make_adversary("conforming"),
            seed=1,
            collect_trace=True,
        )
        frozen = freeze_rounds(result)
        assert len(set(frozen.values())) == 1

    def test_disagreeing_votes_delay_freezing(self):
        """An adversary that keeps sending (valid) disagreeing votes pushes
        freezing back — a pure liveness attack."""
        benign = run_protocol(
            EARLY,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("silent"),
            seed=0,
            collect_trace=True,
        )
        attacked = run_protocol(
            EARLY,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("rank-skew"),
            seed=0,
            collect_trace=True,
        )
        benign_frozen = freeze_rounds(benign)
        attacked_frozen = freeze_rounds(attacked)
        assert benign_frozen  # benign run froze
        if attacked_frozen:
            assert min(attacked_frozen.values()) >= min(benign_frozen.values())

    def test_round_count_unchanged(self):
        """Freezing keeps participating: wall rounds match the schedule."""
        result = run_protocol(
            EARLY,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("silent"),
            seed=0,
        )
        assert result.metrics.round_count == SystemParams(7, 2).total_rounds

    def test_frozen_at_exposed_on_process(self):
        result = run_protocol(
            EARLY,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("silent"),
            seed=0,
        )
        for index in result.correct:
            assert result.processes[index].frozen_at is not None
