"""Cross-engine differential contract under fault injection.

The chaos hook sits at the same point in every engine (after the adversary
fills Byzantine outboxes, before routing), so a seeded :class:`FaultPlan`
must produce bit-for-bit identical behaviour on every registered engine —
reference, batched, and (when numpy is present) vector — including
identical *failures* when an injection trips a typed error. An empty plan
must be indistinguishable from no plan at all.
"""

from __future__ import annotations

import pytest

from helpers import assert_runs_identical, run_registered, standard_ids
from repro.adversary import make_adversary
from repro.analysis import ALGORITHMS
from repro.sim import ENGINES, FaultPlan, SimulationError, run_protocol
from repro.wire import WireError


def _chaos_run(algorithm, n, t, *, attack, seed, engine, plan, max_rounds=64):
    """Run one registered algorithm under a plan; errors become data."""
    spec = ALGORITHMS[algorithm]
    ids = standard_ids(n)
    try:
        result = run_protocol(
            spec.build_factory(n, t, ids, seed),
            n=n,
            t=t,
            ids=ids,
            adversary=make_adversary(attack) if t > 0 else None,
            seed=seed,
            engine=engine,
            chaos=plan,
            max_rounds=max_rounds,
            collect_trace=True,
        )
    except (SimulationError, WireError) as exc:
        return ("error", type(exc).__name__, str(exc))
    return ("ok", result)


def _assert_engines_agree(algorithm, n, t, *, attack, seed, plan):
    outcomes = {
        engine: _chaos_run(
            algorithm, n, t, attack=attack, seed=seed, engine=engine, plan=plan
        )
        for engine in ENGINES
    }
    ref = outcomes.pop("reference")
    ref_chaos = (
        ref[1].chaos.as_dict() if ref[0] == "ok" and ref[1].chaos else None
    )
    for other_engine, other in sorted(outcomes.items()):
        context = (
            f"{algorithm} n={n} t={t} attack={attack} seed={seed} "
            f"plan=[{plan.describe()}] engines=reference/{other_engine}"
        )
        assert ref[0] == other[0], f"{context}: {ref[0]} vs {other[0]}"
        if ref[0] == "error":
            assert ref[1:] == other[1:], context
            continue
        assert_runs_identical(ref[1], other[1], context)
        other_chaos = other[1].chaos.as_dict() if other[1].chaos else None
        assert ref_chaos == other_chaos, context


PLANS = [
    FaultPlan(seed=1, drop=0.3),
    FaultPlan(seed=2, duplicate=0.5),
    FaultPlan(seed=3, corrupt=0.3),
    FaultPlan(seed=4, extra_crashes=1, crash_round=2),
    FaultPlan(seed=5, drop=0.2, duplicate=0.2, corrupt=0.2, extra_crashes=1),
]


class TestEmptyPlanIdentity:
    """FaultPlan() must be bit-for-bit the same as chaos=None."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("algorithm,n,t", [("alg1", 7, 2), ("alg4", 11, 2)])
    def test_empty_plan_is_a_no_op(self, algorithm, n, t, engine):
        baseline = run_registered(
            algorithm, n, t, attack="silent", seed=0, engine=engine
        )
        status, with_plan = _chaos_run(
            algorithm, n, t, attack="silent", seed=0, engine=engine,
            plan=FaultPlan(), max_rounds=1000,
        )
        assert status == "ok"
        assert with_plan.chaos is None
        assert_runs_identical(baseline, with_plan, f"{algorithm} on {engine}")


class TestFaultedDifferential:
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.describe())
    def test_alg1_engines_agree_under_faults(self, plan):
        _assert_engines_agree("alg1", 7, 2, attack="silent", seed=0, plan=plan)

    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.describe())
    def test_okun_crash_engines_agree_under_faults(self, plan):
        _assert_engines_agree(
            "okun-crash", 5, 1, attack="crash", seed=1, plan=plan
        )

    def test_alg4_engines_agree_under_corruption(self):
        _assert_engines_agree(
            "alg4", 11, 2, attack="silent", seed=0,
            plan=FaultPlan(seed=9, corrupt=0.4),
        )

    def test_explicit_crash_engines_agree(self):
        # Slot picked per seed so it lands on a correct process; if the
        # adversary corrupts that slot the injector rejects the plan — and
        # that rejection, too, must be identical across engines.
        for slot in range(5):
            _assert_engines_agree(
                "alg1", 7, 2, attack="conforming", seed=2,
                plan=FaultPlan(crashes=((slot, 2),)),
            )


@pytest.mark.slow
class TestFaultedDifferentialGrid:
    """Wider sweep: every Byzantine attack x plan x a few seeds."""

    @pytest.mark.parametrize("attack", ALGORITHMS["alg1"].attacks)
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.describe())
    @pytest.mark.parametrize("seed", range(3))
    def test_alg1_grid(self, attack, plan, seed):
        _assert_engines_agree("alg1", 7, 2, attack=attack, seed=seed, plan=plan)

    @pytest.mark.parametrize("attack", ALGORITHMS["alg4"].attacks)
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: p.describe())
    @pytest.mark.parametrize("seed", range(3))
    def test_alg4_grid(self, attack, plan, seed):
        _assert_engines_agree("alg4", 11, 2, attack=attack, seed=seed, plan=plan)
