"""Scenario-driven integration: every canned scenario runs end-to-end
through every algorithm whose regime, attack and model support cover it.

Classic-model scenarios must come out clean (``ok_without_order`` plus
order preservation where promised). Scenarios under a non-classic model are
judged against the model's registered expectations instead: a typed
``SimulationError`` is an acceptable in-run detection, and a finished run
may only break properties the model lists as degradable — a guaranteed
property breaking inside the model's bound is a real failure.
"""

from __future__ import annotations

import pytest

from repro.analysis import ALGORITHMS, run_experiment
from repro.sim import SimulationError, parse_model
from repro.workloads import all_scenarios, make_ids

SCENARIOS = all_scenarios()


def compatible_algorithms(scenario):
    model = parse_model(scenario.model)
    names = []
    for name, spec in sorted(ALGORITHMS.items()):
        if (
            spec.supports(scenario.n, scenario.t)
            and scenario.attack in spec.attacks
            and model.kind in spec.models
        ):
            names.append(name)
    return names


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[scenario.name for scenario in SCENARIOS]
)
def test_scenario_runs_on_all_compatible_algorithms(scenario):
    algorithms = compatible_algorithms(scenario)
    assert algorithms, f"scenario {scenario.name} matches no algorithm"
    model = parse_model(scenario.model)
    expectations = model.expectations()
    ids = make_ids(scenario.workload, scenario.n, seed=0)
    for algorithm in algorithms:
        spec = ALGORITHMS[algorithm]
        try:
            record = run_experiment(
                algorithm,
                scenario.n,
                scenario.t,
                ids,
                attack=scenario.attack,
                model=model,
            )
        except SimulationError:
            # A typed in-run detection (e.g. a protocol invariant check
            # tripping on withheld frames) is an acceptable outcome under a
            # degradable model — but never under classic.
            assert not model.is_classic, (scenario.name, algorithm)
            continue
        report = record.report
        if model.is_inert:
            assert report.ok_without_order(), (
                scenario.name,
                algorithm,
                report.violations,
            )
            if spec.order_preserving:
                assert report.order_preservation, (scenario.name, algorithm)
        else:
            verdicts = expectations.classify(report.broken)
            unexpected = {
                prop
                for prop, verdict in verdicts.items()
                if verdict == "unexpected"
                and (prop != "order_preservation" or spec.order_preserving)
            }
            assert not unexpected, (
                scenario.name,
                algorithm,
                unexpected,
                report.violations,
            )


def test_alg1_covers_every_scenario():
    """Alg. 1 (the paper's main algorithm) must be runnable on each scenario
    except those built for the fast algorithm's attack surface."""
    for scenario in SCENARIOS:
        algorithms = compatible_algorithms(scenario)
        if scenario.attack.startswith("selective-echo"):
            assert "alg4" in algorithms
        else:
            assert "alg1" in algorithms, scenario.name


def test_model_scenarios_exist_for_every_non_classic_kind():
    """Each registered non-classic model kind ships at least one scenario."""
    kinds = {parse_model(s.model).kind for s in SCENARIOS}
    assert {"impersonation", "partial-synchrony"} <= kinds
