"""Scenario-driven integration: every canned scenario runs end-to-end
through every algorithm whose regime and attack support cover it."""

from __future__ import annotations

import pytest

from repro.analysis import ALGORITHMS, run_experiment
from repro.workloads import all_scenarios, make_ids

SCENARIOS = all_scenarios()


def compatible_algorithms(scenario):
    names = []
    for name, spec in sorted(ALGORITHMS.items()):
        if spec.supports(scenario.n, scenario.t) and scenario.attack in spec.attacks:
            names.append(name)
    return names


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[scenario.name for scenario in SCENARIOS]
)
def test_scenario_runs_on_all_compatible_algorithms(scenario):
    algorithms = compatible_algorithms(scenario)
    assert algorithms, f"scenario {scenario.name} matches no algorithm"
    ids = make_ids(scenario.workload, scenario.n, seed=0)
    for algorithm in algorithms:
        record = run_experiment(
            algorithm, scenario.n, scenario.t, ids, attack=scenario.attack
        )
        spec = ALGORITHMS[algorithm]
        report = record.report
        assert report.ok_without_order(), (
            scenario.name,
            algorithm,
            report.violations,
        )
        if spec.order_preserving:
            assert report.order_preservation, (scenario.name, algorithm)


def test_alg1_covers_every_scenario():
    """Alg. 1 (the paper's main algorithm) must be runnable on each scenario
    except those built for the fast algorithm's attack surface."""
    for scenario in SCENARIOS:
        algorithms = compatible_algorithms(scenario)
        if scenario.attack.startswith("selective-echo"):
            assert "alg4" in algorithms
        else:
            assert "alg1" in algorithms, scenario.name
