"""Registry-wide property test: every registered algorithm keeps its
promises under every attack it supports, on randomized configurations.

This is the broadest single statement in the suite — adding an algorithm
or an attack to the registries automatically widens its coverage.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import ALGORITHMS, run_experiment
from repro.core import SystemParams
from repro.workloads import make_ids

#: Smallest supported (n, t) per algorithm plus a little headroom — keeps
#: randomized sizes inside every regime without re-deriving thresholds here.
SIZE_RANGES = {
    "alg1": [(4, 1), (7, 2), (10, 3)],
    "alg1-constant": [(4, 1), (9, 2), (10, 2)],
    "alg4": [(4, 1), (11, 2), (13, 2)],
    "okun-crash": [(4, 1), (7, 2), (9, 3)],
    "cht": [(5, 1), (8, 2)],
    "floodset": [(4, 1), (7, 2)],
    "translated": [(7, 2), (10, 3)],
    "consensus": [(4, 1), (7, 2)],
}


def test_size_ranges_cover_registry():
    assert set(SIZE_RANGES) == set(ALGORITHMS)
    for algorithm, sizes in SIZE_RANGES.items():
        for n, t in sizes:
            assert ALGORITHMS[algorithm].supports(n, t), (algorithm, n, t)


@settings(
    deadline=None, max_examples=40, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    algorithm=st.sampled_from(sorted(ALGORITHMS)),
    pick=st.data(),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_every_algorithm_keeps_its_promises(algorithm, pick, seed):
    spec = ALGORITHMS[algorithm]
    n, t = pick.draw(st.sampled_from(SIZE_RANGES[algorithm]))
    attack = pick.draw(st.sampled_from(list(spec.attacks)))
    ids = make_ids("uniform", n, seed=seed)
    record = run_experiment(algorithm, n, t, ids, attack=attack, seed=seed)
    report = record.report
    context = (algorithm, n, t, attack, seed)
    assert report.ok_without_order(), (context, report.violations)
    if spec.order_preserving:
        assert report.order_preservation, (context, report.violations)
    assert record.max_name <= spec.namespace(SystemParams(n, t)), context
