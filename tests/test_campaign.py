"""Crash-contained chaos campaigns: grid builder, triage, containment."""

from __future__ import annotations

import json
import shlex
import time

import pytest

from repro.analysis import (
    CHAOS_PRESETS,
    ChaosCampaign,
    ChaosOutcome,
    ChaosTask,
    TriageReport,
    chaos_grid,
    execute_chaos_task,
)
from repro.analysis.campaign import STATUSES
from repro.cli import main
from repro.sim import ConfigurationError


# Injectable task runners for containment tests. Module-level so they
# survive the trip into pool workers.

def _always_crash(task):
    raise RuntimeError("boom")


def _hang_forever(task):
    time.sleep(600)


def _verdict_by_seed(task):
    return ChaosOutcome(task=task, status="clean" if task.seed == 0 else "tolerated")


class _FlakyRunner:
    """Crashes on the first call for each task, succeeds on retry."""

    def __init__(self):
        self.seen = set()

    def __call__(self, task):
        if task not in self.seen:
            self.seen.add(task)
            raise OSError("transient")
        return ChaosOutcome(task=task, status="clean")


SMALL_GRID = chaos_grid(
    ["alg1"], [(7, 2)], seeds=(0,), chaos_seeds=(0,),
    drop=(0.3,), corrupt=(0.3,), extra_crashes=(1,),
)


class TestChaosGrid:
    def test_linear_in_fault_values_plus_clean_control(self):
        tasks = chaos_grid(
            ["alg1"], [(7, 2)], seeds=(0, 1), chaos_seeds=(0, 1),
            drop=(0.1, 0.5), corrupt=(0.2,),
        )
        # 2 seeds x (1 clean + 2 chaos_seeds x 3 single-axis variants)
        assert len(tasks) == 2 * (1 + 2 * 3)
        clean = [task for task in tasks if task.fault_plan().is_empty]
        assert len(clean) == 2  # once per configuration, not per chaos seed
        assert all(task.drop == 0.0 or task.corrupt == 0.0 for task in tasks)

    def test_combine_merges_one_plan(self):
        tasks = chaos_grid(
            ["alg1"], [(7, 2)], drop=(0.1,), duplicate=(0.2,),
            extra_crashes=(1,), crash_round=3, combine=True,
            include_clean=False,
        )
        assert len(tasks) == 1
        task = tasks[0]
        assert (task.drop, task.duplicate, task.extra_crashes) == (0.1, 0.2, 1)
        assert task.crash_round == 3

    def test_combine_rejects_multiple_values_per_axis(self):
        with pytest.raises(ConfigurationError, match="combine"):
            chaos_grid(["alg1"], [(7, 2)], drop=(0.1, 0.2), combine=True)

    def test_include_clean_false_drops_controls(self):
        tasks = chaos_grid(
            ["alg1"], [(7, 2)], drop=(0.3,), include_clean=False
        )
        assert all(not task.fault_plan().is_empty for task in tasks)

    def test_presets_are_valid_grid_inputs(self):
        for preset in CHAOS_PRESETS.values():
            tasks = chaos_grid(["alg1"], [(7, 2)], **preset)
            assert tasks
            for task in tasks:
                task.fault_plan()  # validates


class TestExecuteChaosTask:
    def test_clean_cell_is_clean(self):
        outcome = execute_chaos_task(ChaosTask("alg1", 7, 2))
        assert outcome.status == "clean"
        assert not outcome.injected

    def test_injection_never_reports_clean(self):
        outcome = execute_chaos_task(ChaosTask("alg1", 7, 2, drop=0.4))
        assert outcome.status in STATUSES and outcome.status != "clean"

    def test_off_regime_cell_is_detected(self):
        outcome = execute_chaos_task(ChaosTask("alg1", 6, 2))
        assert outcome.status == "detected"
        assert "ConfigurationError" in outcome.error

    def test_monitor_detection_carries_violated_tag(self):
        # A heavy drop plan starves okun-crash of its own rank — the typed
        # invariant violation must surface as a tagged detection.
        outcome = execute_chaos_task(
            ChaosTask("okun-crash", 5, 1, attack="crash", drop=0.9)
        )
        assert outcome.status == "detected"
        assert outcome.violated


class TestCampaignSerial:
    def test_deterministic_given_seeds(self):
        campaign = ChaosCampaign(workers=1)
        first = campaign.run(SMALL_GRID)
        second = campaign.run(SMALL_GRID)

        def strip(report):
            out = []
            for entry in (o.as_dict() for o in report.outcomes):
                entry["elapsed_s"] = 0.0
                out.append(entry)
            return out

        assert strip(first) == strip(second)

    def test_every_cell_classified_no_silent_success(self):
        report = ChaosCampaign(workers=1).run(SMALL_GRID)
        assert len(report.outcomes) == len(SMALL_GRID)
        assert report.silent_successes() == []
        for outcome in report.outcomes:
            assert outcome.status in STATUSES
            if outcome.injected:
                assert outcome.status != "clean"
        assert report.ok

    def test_outcomes_keep_task_order(self):
        tasks = [ChaosTask("alg1", 7, 2, seed=seed) for seed in (0, 1, 0, 1)]
        report = ChaosCampaign(workers=1, task_runner=_verdict_by_seed).run(tasks)
        assert [o.status for o in report.outcomes] == [
            "clean", "tolerated", "clean", "tolerated"
        ]

    def test_crashing_cell_is_retried_then_quarantined(self):
        tasks = [ChaosTask("alg1", 7, 2)]
        report = ChaosCampaign(workers=1, task_runner=_always_crash).run(tasks)
        outcome = report.outcomes[0]
        assert outcome.status == "crashed"
        assert outcome.error == "RuntimeError: boom"
        assert outcome.retries == 1
        assert report.retried == 1
        assert not report.ok
        assert outcome.as_dict()["reproducer"] == tasks[0].reproducer()

    def test_transient_crash_succeeds_on_retry(self):
        tasks = [ChaosTask("alg1", 7, 2, seed=seed) for seed in (0, 1)]
        report = ChaosCampaign(workers=1, task_runner=_FlakyRunner()).run(tasks)
        assert [o.status for o in report.outcomes] == ["clean", "clean"]
        assert [o.retries for o in report.outcomes] == [1, 1]
        assert report.retried == 2
        assert report.ok


class TestCampaignPool:
    def test_pool_matches_serial_verdicts(self):
        serial = ChaosCampaign(workers=1).run(SMALL_GRID)
        pooled = ChaosCampaign(workers=2).run(SMALL_GRID)
        assert [o.status for o in pooled.outcomes] == [
            o.status for o in serial.outcomes
        ]
        assert [o.injected for o in pooled.outcomes] == [
            o.injected for o in serial.outcomes
        ]
        assert pooled.workers == 2

    def test_pool_quarantines_crashing_workers(self):
        tasks = [ChaosTask("alg1", 7, 2, seed=seed) for seed in (0, 1, 2)]
        report = ChaosCampaign(
            workers=2, task_runner=_always_crash
        ).run(tasks)
        assert [o.status for o in report.outcomes] == ["crashed"] * 3
        assert all("RuntimeError: boom" in o.error for o in report.outcomes)
        assert report.retried == 3
        assert not report.ok

    def test_hung_workers_cost_one_window_not_the_campaign(self):
        tasks = [ChaosTask("alg1", 7, 2, seed=seed) for seed in (0, 1)]
        start = time.perf_counter()
        report = ChaosCampaign(
            workers=2, timeout_s=1.0, task_runner=_hang_forever
        ).run(tasks)
        elapsed = time.perf_counter() - start
        assert [o.status for o in report.outcomes] == ["timeout"] * 2
        assert elapsed < 30  # two sleep(600) cells, contained in one window
        assert not report.ok
        for outcome in report.quarantined:
            assert "python -m repro.cli chaos" in outcome.task.reproducer()


class TestTriageReport:
    def test_render_lists_quarantine_reproducers(self):
        task = ChaosTask("alg1", 7, 2, drop=0.2)
        report = TriageReport(
            outcomes=[ChaosOutcome(task=task, status="timeout", error="hung")]
        )
        text = report.render()
        assert "quarantined (reproduce with):" in text
        assert task.reproducer() in text
        assert not report.ok

    def test_silent_success_is_flagged_loudly(self):
        task = ChaosTask("alg1", 7, 2, drop=0.2)
        report = TriageReport(
            outcomes=[
                ChaosOutcome(task=task, status="clean", injected={"drop": 3})
            ]
        )
        assert report.silent_successes()
        assert "HARNESS BUG" in report.render()
        assert not report.ok

    def test_to_json_is_serialisable(self):
        report = ChaosCampaign(workers=1).run(SMALL_GRID[:3])
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["counts"]["clean"] >= 1
        assert len(payload["outcomes"]) == 3


class TestReproducerRoundTrip:
    def test_reproducer_reruns_exactly_one_cell(self, capsys, tmp_path):
        task = ChaosTask(
            "alg1", 7, 2, attack="conforming", seed=1, engine="reference",
            chaos_seed=2, drop=0.25, extra_crashes=1, crash_round=2,
        )
        line = task.reproducer()
        assert line.startswith("python -m repro.cli chaos ")
        argv = shlex.split(line)[3:]  # strip "python -m repro.cli"
        json_path = tmp_path / "triage.json"
        argv += ["--no-clean", "--json", str(json_path)]
        code = main(argv)
        capsys.readouterr()
        payload = json.loads(json_path.read_text())
        assert len(payload["outcomes"]) == 1
        assert payload["outcomes"][0]["task"] == task.describe()
        assert payload["silent_successes"] == 0
        assert code in (0, 3)  # healthy campaign either way
        assert payload["counts"]["timeout"] == 0
        assert payload["counts"]["crashed"] == 0

    def test_acceptance_scale_campaign(self):
        # The acceptance bar: >= 50 cells over both engines, zero hangs,
        # every injection classified. Serial keeps it deterministic.
        tasks = chaos_grid(
            ["alg1", "alg4"], [(7, 2), (11, 2)],
            seeds=(0,), chaos_seeds=(0, 1),
            engines=("batched", "reference"),
            drop=(0.2,), corrupt=(0.2,), extra_crashes=(1,),
        )
        assert len(tasks) >= 50
        report = ChaosCampaign(workers=1).run(tasks)
        assert report.ok
        assert not report.quarantined
        counts = report.counts()
        assert counts["clean"] + counts["tolerated"] + counts["violation"] + \
            counts["detected"] == len(tasks)
