"""The durable session journal and the daemon's idempotency contract.

File-level tests pin the ledger discipline (same envelope as the PR 5 run
journal): checksummed records, torn-tail truncation, mid-file corruption
as a typed :class:`~repro.sim.errors.JournalError`, the deterministic
SIGKILL hook. Daemon tests run a real :class:`RenamingService` on a
loopback socket and prove the token contract end to end: same token →
byte-identical replay, never a second execution; different parameters
under a reused token → typed config reject; concurrent duplicates →
``duplicate-session``; queries answer from the journal. Crash/restart
with real processes is ``tests/test_service_recovery.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.frames import FrameDecoder, read_frame, write_frame
from repro.service.journal import (
    SESSION_JOURNAL_KIND,
    SessionJournal,
    request_fingerprint,
    scan_session_journal,
)
from repro.service.load import run_load, run_query, run_session
from repro.service.messages import (
    ERROR_CODES,
    SESSION_STATES,
    CertificateMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    QueryRequestMessage,
    QueryResponseMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)
from repro.service.server import RenamingService
from repro.sim.errors import JournalError
from repro.workloads import make_ids


# ---------------------------------------------------------------------- #
# the ledger file                                                        #
# ---------------------------------------------------------------------- #


class TestSessionJournalFile:
    def test_roundtrip_and_reopen(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        with SessionJournal.open_or_create(path) as journal:
            journal.accepted("tok-1", "fp-1", {"algorithm": "auto"})
            journal.completed(
                "tok-1", "fp-1", names_hex="aa", certificate_hex="bb", ok=True
            )
            journal.accepted("tok-2", "fp-2", {"algorithm": "alg1"})
        state = scan_session_journal(path)
        assert state.header == {"kind": SESSION_JOURNAL_KIND}
        assert not state.torn
        done = state.sessions["tok-1"]
        assert done.state == "completed"
        assert done.names_hex == "aa" and done.certificate_hex == "bb"
        assert done.ok and done.accepted == 1
        assert state.in_flight() == ["tok-2"]
        # Reopen replays the same state and appends continue the sequence.
        with SessionJournal.open_or_create(path) as journal:
            assert journal.lookup("tok-1").state == "completed"
            journal.failed("tok-2", "fp-2", code="config", detail="boom")
        assert scan_session_journal(path).sessions["tok-2"].state == "failed"

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        with SessionJournal.open_or_create(path) as journal:
            journal.accepted("tok", "fp", {})
        good = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"v":1,"seq":2,"type":"comp')  # crash mid-append
        state = scan_session_journal(path)
        assert state.torn and state.good_bytes == good
        assert state.sessions["tok"].state == "in-flight"
        # open_or_create repairs the file in place.
        SessionJournal.open_or_create(path).close()
        assert path.stat().st_size == good
        assert not scan_session_journal(path).torn

    def test_mid_file_corruption_is_a_typed_error(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        with SessionJournal.open_or_create(path) as journal:
            journal.accepted("tok", "fp", {})
            journal.completed(
                "tok", "fp", names_hex="aa", certificate_hex="bb", ok=True
            )
        lines = path.read_bytes().split(b"\n")
        lines[1] = lines[1].replace(b'"accepted"', b'"acXepted"')
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(JournalError):
            scan_session_journal(path)

    def test_sequence_gap_is_a_typed_error(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        with SessionJournal.open_or_create(path) as journal:
            journal.accepted("tok", "fp", {})
            journal.accepted("tok2", "fp2", {})
        lines = path.read_bytes().split(b"\n")
        del lines[1]  # a whole record vanished: not a torn tail, corruption
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(JournalError, match="sequence gap"):
            scan_session_journal(path)

    def test_run_journal_is_rejected_by_kind(self, tmp_path):
        from repro.analysis.journal import RunJournal

        path = tmp_path / "run.jsonl"
        RunJournal.create(
            path, run_id="r", kind="sweep", cells=1, config={}, fingerprint="f"
        ).close()
        with pytest.raises(JournalError):
            scan_session_journal(path)

    def test_terminal_record_first_wins(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        with SessionJournal.open_or_create(path) as journal:
            journal.accepted("tok", "fp", {})
            journal.completed(
                "tok", "fp", names_hex="aa", certificate_hex="bb", ok=True
            )
            journal.failed("tok", "fp", code="config", detail="late")
        record = scan_session_journal(path).sessions["tok"]
        assert record.state == "completed" and record.names_hex == "aa"

    def test_crash_hook_fires_on_nth_record(self, tmp_path, monkeypatch):
        import repro.service.journal as journal_module

        kills = []
        monkeypatch.setenv("REPRO_SERVICE_CRASH_AFTER", "accepted:2")
        monkeypatch.setattr(
            journal_module.os, "kill", lambda pid, sig: kills.append((pid, sig))
        )
        with SessionJournal.open_or_create(tmp_path / "s.jsonl") as journal:
            journal.accepted("a", "fp", {})
            assert not kills  # first accepted: under the threshold
            journal.accepted("b", "fp", {})
            assert len(kills) == 1  # the record was durable before the kill

    def test_fingerprint_pins_the_whole_request(self):
        base = {"session_id": "t", "algorithm": "auto", "t": 1,
                "attack": "silent", "seed": 0, "ids": [3, 7]}
        assert request_fingerprint(base) == request_fingerprint(dict(base))
        for key, value in (("seed", 1), ("ids", [3, 8]), ("algorithm", "alg1")):
            assert request_fingerprint({**base, key: value}) != \
                request_fingerprint(base)


# ---------------------------------------------------------------------- #
# the daemon's idempotency contract (in-process, real sockets)           #
# ---------------------------------------------------------------------- #


def _service(journal=None, **kwargs):
    kwargs.setdefault("max_sessions", 8)
    kwargs.setdefault("session_deadline_s", 5.0)
    kwargs.setdefault("idle_timeout_s", 2.0)
    kwargs.setdefault("drain_grace_s", 1.0)
    return RenamingService(
        install_signal_handlers=False, journal=journal, **kwargs
    )


async def _with_service(body, journal=None, **kwargs):
    svc = _service(journal=journal, **kwargs)
    await svc.start()
    runner = asyncio.create_task(svc.serve_forever())
    try:
        return await body(svc)
    finally:
        if not runner.done():
            svc.initiate_drain()
            svc.initiate_drain()
        await runner


def _drive(svc, *, session_id, seed=1, algorithm="auto", t=0, n=6):
    host, port = svc.bound_address
    return run_session(
        host, port, ids=make_ids("uniform", n, seed=seed),
        algorithm=algorithm, t=t, seed=seed, session_id=session_id,
    )


class TestTokenedSessions:
    def test_completed_session_is_journaled(self, tmp_path):
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")

        async def body(svc):
            outcome = await _drive(svc, session_id="tok-1")
            assert outcome.status == "completed", outcome
            return outcome

        asyncio.run(_with_service(body, journal=journal))
        record = scan_session_journal(tmp_path / "s.jsonl").sessions["tok-1"]
        assert record.state == "completed" and record.ok
        assert record.accepted == 1
        assert record.request["ids"] == sorted(make_ids("uniform", 6, seed=1))

    def test_repeat_submission_replays_byte_identical(self, tmp_path):
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")

        async def body(svc):
            first = await _drive(svc, session_id="tok-1")
            again = await _drive(svc, session_id="tok-1")
            assert first.status == again.status == "completed"
            assert again.entries == first.entries
            assert again.certificate == first.certificate
            assert svc.stats.replayed == 1
            assert svc.stats.completed == 1  # executed exactly once

        asyncio.run(_with_service(body, journal=journal))

    def test_restarted_daemon_replays_without_rerunning(self, tmp_path):
        path = tmp_path / "s.jsonl"

        async def first_life(svc):
            outcome = await _drive(svc, session_id="tok-1")
            assert outcome.status == "completed"
            return outcome

        first = asyncio.run(
            _with_service(first_life, journal=SessionJournal.open_or_create(path))
        )

        async def second_life(svc):
            again = await _drive(svc, session_id="tok-1")
            assert again.status == "completed"
            assert again.entries == first.entries
            assert again.certificate == first.certificate
            assert svc.stats.completed == 0  # never re-ran
            assert svc.stats.replayed == 1

        asyncio.run(
            _with_service(second_life, journal=SessionJournal.open_or_create(path))
        )

    def test_reused_token_with_different_request_is_rejected(self, tmp_path):
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")

        async def body(svc):
            assert (await _drive(svc, session_id="tok-1", seed=1)).status == \
                "completed"
            clash = await _drive(svc, session_id="tok-1", seed=2)
            assert clash.status == "rejected" and clash.code == "config"
            assert "different parameters" in clash.detail

        asyncio.run(_with_service(body, journal=journal))

    def test_token_without_journal_is_a_config_reject(self):
        async def body(svc):
            outcome = await _drive(svc, session_id="tok-1")
            assert outcome.status == "rejected" and outcome.code == "config"
            assert "--session-journal" in outcome.detail

        asyncio.run(_with_service(body))

    def test_deterministic_failure_is_journaled_and_replayed(self, tmp_path):
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")

        async def body(svc):
            bad = await _drive(svc, session_id="tok-bad", algorithm="nope")
            assert bad.status == "rejected" and bad.code == "config"
            again = await _drive(svc, session_id="tok-bad", algorithm="nope")
            assert again.status == "rejected" and again.code == "config"
            assert again.detail == bad.detail
            assert svc.stats.replayed == 1

        asyncio.run(_with_service(body, journal=journal))
        record = scan_session_journal(tmp_path / "s.jsonl").sessions["tok-bad"]
        assert record.state == "failed" and record.code == "config"

    def test_concurrent_duplicate_token_is_typed(self, tmp_path, monkeypatch):
        import repro.service.server as server_module

        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")
        release = None
        real_execute = server_module.execute_session

        def slow_execute(request):
            import time

            while not release.is_set():  # released from the event loop
                time.sleep(0.01)
            return real_execute(request)

        monkeypatch.setattr(server_module, "execute_session", slow_execute)

        async def body(svc):
            nonlocal release
            import threading

            release = threading.Event()
            first = asyncio.create_task(_drive(svc, session_id="tok-1"))
            # Wait until the token is actively executing, then collide.
            while "tok-1" not in svc._active_tokens:
                await asyncio.sleep(0.01)
            clash = await _drive(svc, session_id="tok-1")
            assert clash.status == "rejected"
            assert clash.code == "duplicate-session"
            assert clash.code in ERROR_CODES
            release.set()
            outcome = await first
            assert outcome.status == "completed"

        asyncio.run(_with_service(body, journal=journal, session_deadline_s=30.0))

    def test_anonymous_sessions_stay_out_of_the_journal(self, tmp_path):
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")

        async def body(svc):
            assert (await _drive(svc, session_id="")).status == "completed"

        asyncio.run(_with_service(body, journal=journal))
        assert scan_session_journal(tmp_path / "s.jsonl").sessions == {}


class TestQueries:
    def test_states_cover_the_contract(self, tmp_path):
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")

        async def body(svc):
            host, port = svc.bound_address
            unknown = await run_query(host, port, "never-seen")
            assert unknown.status == "unknown"
            done = await _drive(svc, session_id="tok-ok")
            assert done.status == "completed"
            queried = await run_query(host, port, "tok-ok")
            assert queried.status == "completed"
            assert queried.entries == done.entries
            assert queried.certificate == done.certificate
            bad = await _drive(svc, session_id="tok-bad", algorithm="nope")
            assert bad.status == "rejected"
            failed = await run_query(host, port, "tok-bad")
            assert failed.status == "failed" and failed.code == "config"
            assert {"unknown", "completed", "failed"} <= set(SESSION_STATES)
            assert svc.stats.queries == 3

        asyncio.run(_with_service(body, journal=journal))

    def test_in_flight_token_reports_in_flight(self, tmp_path, monkeypatch):
        import repro.service.server as server_module

        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")
        real_execute = server_module.execute_session
        release = None

        def slow_execute(request):
            import time

            while not release.is_set():
                time.sleep(0.01)
            return real_execute(request)

        monkeypatch.setattr(server_module, "execute_session", slow_execute)

        async def body(svc):
            nonlocal release
            import threading

            release = threading.Event()
            host, port = svc.bound_address
            running = asyncio.create_task(_drive(svc, session_id="tok-1"))
            while "tok-1" not in svc._active_tokens:
                await asyncio.sleep(0.01)
            queried = await run_query(host, port, "tok-1")
            assert queried.status == "in-flight"
            release.set()
            assert (await running).status == "completed"

        asyncio.run(_with_service(body, journal=journal, session_deadline_s=30.0))

    def test_query_without_journal_is_a_config_reject(self):
        async def body(svc):
            host, port = svc.bound_address
            outcome = await run_query(host, port, "tok")
            assert outcome.status == "rejected" and outcome.code == "config"

        asyncio.run(_with_service(body))

    def test_query_inside_an_open_session_is_a_protocol_error(self, tmp_path):
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")

        async def body(svc):
            host, port = svc.bound_address
            reader, writer = await asyncio.open_connection(host, port)
            greeting = await asyncio.wait_for(read_frame(reader), 5.0)
            assert isinstance(greeting, SessionWelcomeMessage)
            await write_frame(writer, OpenSessionMessage())
            await write_frame(writer, QueryRequestMessage(session_id="tok"))
            error = await asyncio.wait_for(read_frame(reader), 5.0)
            assert isinstance(error, SessionErrorMessage)
            assert error.code == "protocol"
            writer.close()
            await writer.wait_closed()

        asyncio.run(_with_service(body, journal=journal))


class TestLoadBusyBudget:
    def test_busy_retries_are_counted_separately(self, tmp_path):
        # max_sessions=0 refuses every connect: with a budget of B busy
        # retries per session, the report shows exactly sessions × B busy
        # retries and every final outcome is "busy" — backpressure was
        # absorbed and reported, never folded into the error counts.
        async def body(svc):
            host, port = svc.bound_address
            report = await run_load(
                host, port, sessions=3, concurrency=3, ids_per_session=4,
                busy_retries=2,
            )
            assert report.counts == {"busy": 3}
            assert report.busy_retries == 6
            assert report.transport_retries == 0
            assert "busy retries" in report.as_text()

        asyncio.run(_with_service(body, max_sessions=0))

    def test_journaled_frames_decode_as_wire_frames(self, tmp_path):
        # The journal stores the *encoded frames*; an offline reader (the
        # `sessions show` command) must get the identical messages back.
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")

        async def body(svc):
            outcome = await _drive(svc, session_id="tok-1")
            assert outcome.status == "completed"
            return outcome

        outcome = asyncio.run(_with_service(body, journal=journal))
        record = scan_session_journal(tmp_path / "s.jsonl").sessions["tok-1"]
        decoder = FrameDecoder()
        (names,) = decoder.feed(bytes.fromhex(record.names_hex))
        (certificate,) = decoder.feed(bytes.fromhex(record.certificate_hex))
        assert isinstance(names, NamesAssignedMessage)
        assert isinstance(certificate, CertificateMessage)
        assert names.entries == outcome.entries
        assert certificate == outcome.certificate
