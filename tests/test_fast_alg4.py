"""Integration tests for the 2-step algorithm (Theorem VI.3 and its lemmas)."""

from __future__ import annotations

from functools import partial

import pytest

from helpers import assert_renaming_ok, standard_ids
from repro import SystemParams, TwoStepOptions, TwoStepRenaming, run_protocol
from repro.adversary import ALG4_ATTACKS, make_adversary

# (n, t) pairs inside N > 2t^2 + t.
SIZES = [(4, 1), (11, 2), (22, 3)]


class TestTheoremVI3:
    @pytest.mark.parametrize("attack", ALG4_ATTACKS)
    @pytest.mark.parametrize("n,t", SIZES)
    def test_properties_hold_under_attack(self, n, t, attack):
        params = SystemParams(n, t)
        for seed in (0, 1):
            result = run_protocol(
                TwoStepRenaming,
                n=n,
                t=t,
                ids=standard_ids(n),
                adversary=make_adversary(attack),
                seed=seed,
            )
            assert_renaming_ok(
                result,
                params.fast_namespace_bound,
                context=f"alg4 n={n} t={t} attack={attack} seed={seed}",
            )

    @pytest.mark.parametrize("n,t", SIZES)
    def test_exactly_two_rounds(self, n, t):
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary("selective-echo"),
            seed=0,
        )
        assert result.metrics.round_count == 2

    def test_regime_enforced(self):
        # n=10, t=2 has N <= 2t^2 + t = 10.
        with pytest.raises(ValueError):
            run_protocol(TwoStepRenaming, n=10, t=2, ids=standard_ids(10), seed=0)

    def test_fault_free_names_are_multiples_of_n(self):
        result = run_protocol(TwoStepRenaming, n=5, t=0, ids=standard_ids(5), seed=0)
        # Every id echoed by all N processes; clamp is N-0; names accumulate N.
        assert sorted(result.new_names().values()) == [5, 10, 15, 20, 25]


class TestLemmaVI1:
    def test_discrepancy_at_most_2t_squared(self):
        """Under the selective-echo worst case, the same correct id's name
        estimate differs across correct processes by at most 2t^2."""
        n, t = 11, 2
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary("selective-echo"),
            seed=0,
        )
        bound = SystemParams(n, t).fast_discrepancy_bound
        estimates = {}
        for index in result.correct:
            process = result.processes[index]
            for identifier, name in process.new_names.items():
                estimates.setdefault(identifier, []).append(name)
        correct_ids = {result.ids[i] for i in result.correct}
        observed = 0
        for identifier in correct_ids:
            values = estimates[identifier]
            observed = max(observed, max(values) - min(values))
        assert observed <= bound
        # The attack actually realises a non-trivial discrepancy.
        assert observed > 0

    def test_attack_achieves_exactly_2t_squared(self):
        n, t = 11, 2
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary("selective-echo"),
            seed=0,
        )
        top_id = max(result.ids[i] for i in result.correct)
        values = [
            result.processes[i].new_names[top_id] for i in result.correct
        ]
        assert max(values) - min(values) == 2 * t * t


class TestLemmaVI2:
    @pytest.mark.parametrize("attack", ALG4_ATTACKS)
    def test_gap_between_correct_names_at_least_n_minus_t(self, attack):
        n, t = 11, 2
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary(attack),
            seed=0,
        )
        for index in result.correct:
            process = result.processes[index]
            correct_ids = sorted(result.ids[i] for i in result.correct)
            for smaller, larger in zip(correct_ids, correct_ids[1:]):
                gap = process.new_names[larger] - process.new_names[smaller]
                assert gap >= n - t, f"attack={attack}: gap {gap} < {n - t}"


class TestBelowThreshold:
    def test_order_breaks_below_fast_regime(self):
        """The crossover: at N <= 2t^2 + t the selective-echo attack
        actually breaks order preservation (resilience check disabled)."""
        options = TwoStepOptions(enforce_resilience=False)
        broke = 0
        for seed in range(6):
            result = run_protocol(
                partial(TwoStepRenaming, options=options),
                n=9,
                t=2,
                ids=standard_ids(9),
                adversary=make_adversary("selective-echo"),
                seed=seed,
            )
            names = result.new_names()
            ordered = sorted(names)
            values = [names[i] for i in ordered]
            if values != sorted(values):
                broke += 1
        assert broke > 0

    def test_honest_runs_fine_below_threshold(self):
        """Below the regime the algorithm still renames correctly when the
        adversary stays quiet — the bound is about worst-case safety."""
        options = TwoStepOptions(enforce_resilience=False)
        result = run_protocol(
            partial(TwoStepRenaming, options=options),
            n=9,
            t=2,
            ids=standard_ids(9),
            adversary=make_adversary("silent"),
            seed=0,
        )
        assert_renaming_ok(result, 81)


class TestRobustness:
    def test_multiple_multiechoes_on_one_link_count_once(self):
        """A Byzantine link cannot double-count echoes by sending many
        MultiEcho messages (the first one per link wins)."""
        from typing import Dict, Mapping

        from repro.core.messages import IdMessage, MultiEchoMessage
        from repro.sim import Adversary, Outbox

        class DoubleEcho(Adversary):
            def send(self, round_no, correct_outboxes):
                ids = sorted(self.ctx.ids[i] for i in self.ctx.correct)
                if round_no == 1:
                    message = IdMessage(ids[0])
                else:
                    message = MultiEchoMessage.from_ids(ids)
                return {
                    slot: {
                        link: [message] * 5 for link in self.ctx.topology.labels()
                    }
                    for slot in self.ctx.byzantine
                }

        n, t = 11, 2
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=DoubleEcho(),
            seed=0,
        )
        assert_renaming_ok(result, SystemParams(n, t).fast_namespace_bound)
        # Counters never exceed N even with quintuple echoes.
        for index in result.correct:
            for count in result.processes[index].counter.values():
                assert count <= n

    def test_oversized_multiecho_rejected(self):
        from repro.core.messages import IdMessage, MultiEchoMessage
        from repro.sim import Adversary

        class Oversize(Adversary):
            def send(self, round_no, correct_outboxes):
                ids = sorted(self.ctx.ids[i] for i in self.ctx.correct)
                if round_no == 1:
                    message = IdMessage(ids[0])
                else:
                    bloated = ids + list(range(10**6, 10**6 + 20))
                    message = MultiEchoMessage.from_ids(bloated)
                return {
                    slot: {link: [message] for link in self.ctx.topology.labels()}
                    for slot in self.ctx.byzantine
                }

        n, t = 11, 2
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=Oversize(),
            seed=0,
        )
        # Oversized echoes are dropped wholesale: no bloat id gets a counter.
        for index in result.correct:
            for identifier in result.processes[index].counter:
                assert identifier < 10**6

    def test_echo_from_unannounced_link_rejected(self):
        from repro.core.messages import MultiEchoMessage
        from repro.sim import Adversary

        class NoAnnounce(Adversary):
            def send(self, round_no, correct_outboxes):
                if round_no == 1:
                    return {}  # never announce
                ids = sorted(self.ctx.ids[i] for i in self.ctx.correct)
                message = MultiEchoMessage.from_ids(ids)
                return {
                    slot: {link: [message] for link in self.ctx.topology.labels()}
                    for slot in self.ctx.byzantine
                }

        n, t = 11, 2
        result = run_protocol(
            TwoStepRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=NoAnnounce(),
            seed=0,
        )
        # Correct counters cap at the N-t honest echoes; the unannounced
        # Byzantine echoes must not have been counted.
        for index in result.correct:
            for count in result.processes[index].counter.values():
                assert count <= n - t
