"""Ablation tests (experiment E9): each defense, removed, visibly fails.

These tests pin down *why* the paper's design elements exist: the same
attack that the full algorithm absorbs breaks the ablated variant.
"""

from __future__ import annotations

from functools import partial

from helpers import assert_renaming_ok, standard_ids
from repro import (
    OrderPreservingRenaming,
    RenamingOptions,
    TwoStepOptions,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import make_adversary
from repro.analysis import check_renaming

SEEDS = range(6)


def broken_runs(factory, n, t, attack, namespace):
    count = 0
    for seed in SEEDS:
        result = run_protocol(
            factory,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary(attack),
            seed=seed,
        )
        report = check_renaming(result, namespace)
        if not (report.uniqueness and report.order_preservation):
            count += 1
    return count


class TestE9aValidation:
    """isValid (Alg. 2) is the order-preservation linchpin."""

    def test_full_algorithm_absorbs_divergence_attack(self):
        for seed in SEEDS:
            result = run_protocol(
                OrderPreservingRenaming,
                n=7,
                t=2,
                ids=standard_ids(7),
                adversary=make_adversary("divergence"),
                seed=seed,
            )
            assert_renaming_ok(result, 8, context=f"seed={seed}")

    def test_ablated_validation_breaks(self):
        factory = partial(
            OrderPreservingRenaming,
            options=RenamingOptions(validate_votes=False),
        )
        assert broken_runs(factory, 7, 2, "divergence", 8) == len(SEEDS)

    def test_ablated_validation_survives_benign_faults(self):
        """The ablation is only unsafe under the targeted attack — silence
        alone does not break it (the defense is against *lies*)."""
        factory = partial(
            OrderPreservingRenaming,
            options=RenamingOptions(validate_votes=False),
        )
        assert broken_runs(factory, 7, 2, "silent", 8) == 0


class TestE9bClamp:
    """Alg. 4's min(counter, N−t) clamp neutralises selective echo boosts."""

    def test_full_algorithm_absorbs_starve_attack(self):
        for seed in SEEDS:
            result = run_protocol(
                TwoStepRenaming,
                n=11,
                t=2,
                ids=standard_ids(11),
                adversary=make_adversary("selective-echo-starve"),
                seed=seed,
            )
            assert_renaming_ok(result, 121, context=f"seed={seed}")

    def test_ablated_clamp_breaks(self):
        factory = partial(
            TwoStepRenaming, options=TwoStepOptions(clamp_offsets=False)
        )
        assert broken_runs(factory, 11, 2, "selective-echo-starve", 121) == len(SEEDS)

    def test_ablated_clamp_survives_benign_faults(self):
        factory = partial(
            TwoStepRenaming, options=TwoStepOptions(clamp_offsets=False)
        )
        assert broken_runs(factory, 11, 2, "silent", 121) == 0


class TestE9cRoundSchedule:
    """The Lemma IV.9 voting-round schedule is load-bearing.

    The ``divergence-valid`` adversary seeds divergent accepted sets and
    then *sustains* the divergence with per-recipient votes that each pass
    ``isValid``. A single voting round leaves adjacent rounded ranks
    colliding/inverting at the interleaved victims; the full schedule
    contracts the spread away.
    """

    def test_truncated_voting_breaks(self):
        factory = partial(
            OrderPreservingRenaming, options=RenamingOptions(voting_rounds=1)
        )
        assert broken_runs(factory, 7, 2, "divergence-valid", 8) == len(SEEDS)

    def test_full_schedule_absorbs(self):
        assert broken_runs(OrderPreservingRenaming, 7, 2, "divergence-valid", 8) == 0

    def test_full_schedule_absorbs_larger_t(self):
        assert broken_runs(OrderPreservingRenaming, 13, 4, "divergence-valid", 16) == 0


class TestE9dStretchAnalytic:
    """The δ stretch's role is the *analytic* rounding margin.

    With δ = 1 the convergence target (δ−1)/2 collapses to zero — the
    Theorem IV.10 margin argument is void. Empirically the integer-grid
    layouts our attacks can sustain through the validation filter never
    realise a collision at laptop scales (a reproduction finding recorded in
    EXPERIMENTS.md E9), so the checks here are the analytic collapse plus
    behavioural equivalence on the attack library.
    """

    def test_margin_collapses_without_stretch(self):
        from repro.core import SystemParams

        params = SystemParams(7, 2)
        assert params.convergence_target > 0  # with stretch
        # Without the stretch the target (delta-1)/2 is exactly zero.
        from fractions import Fraction

        assert (Fraction(1) - 1) / 2 == 0

    def test_no_stretch_survives_attacks_at_small_scale(self):
        factory = partial(
            OrderPreservingRenaming, options=RenamingOptions(stretch=False)
        )
        for attack in ("divergence", "divergence-valid", "rank-skew"):
            assert broken_runs(factory, 7, 2, attack, 8) == 0
