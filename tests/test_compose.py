"""The composition layer: differential identity, virtualization, multiplexing.

Two halves:

1. **Differential suite** — the composed implementations (Alg. 1 /
   constant-time / two-step / translated / consensus as
   ``PhaseSequence``/``Multiplexer`` pipelines) must be output- and
   trace-identical to the frozen pre-refactor monoliths in
   ``legacy_reference.py`` across ≥ 20 seeds × every attack registered for
   each algorithm. The phase-composed algorithms emit byte-identical
   traffic, so identity holds under *every* attack, traffic-reactive ones
   included. The multiplexed consensus deliberately changes the wire shape
   (per-source envelopes instead of one combined relay), so the two
   traffic-reactive adversaries (replay, fuzz) see different bytes to react
   to — for those, the suite asserts the renaming properties instead of
   bit-identity.

2. **Unit tests** — ``PhaseSequence`` round-offset virtualization and
   result threading, ``Multiplexer`` envelope wrapping/routing/hygiene,
   and the ``EnvelopeMessage`` wire codec.
"""

from __future__ import annotations

import pytest

from helpers import assert_renaming_ok, standard_ids
from legacy_reference import (
    LegacyConstantTimeRenaming,
    LegacyOrderPreservingRenaming,
    LegacyTranslatedByzantineRenaming,
    LegacyTwoStepRenaming,
    legacy_consensus_factory,
)
from repro.adversary import ALG1_ATTACKS, ALG4_ATTACKS, make_adversary
from repro.analysis.experiments import CRASH_ATTACKS
from repro.baselines import TranslatedByzantineRenaming, consensus_renaming_factory
from repro.core import (
    ConstantTimeRenaming,
    IdSelectionPhase,
    OrderPreservingRenaming,
    RenamingOptions,
    TwoStepRenaming,
)
from repro.core.messages import IdMessage, RanksMessage
from repro.sim import (
    BROADCAST,
    EnvelopeMessage,
    Multiplexer,
    Phase,
    PhaseSequence,
    Process,
    ProcessContext,
    run_protocol,
)
from repro.wire import WireError, decode_message, encode_message, encoded_bits

SEEDS = range(20)

#: Consensus attacks whose adversaries never react to observed correct
#: traffic (rng-only, protocol-driven, or silent) — the multiplexed wire
#: shape is invisible to them, so full identity with the legacy combined
#: EIG is required. ``replay`` and ``fuzz`` copy observed bytes and are
#: excluded (see module docstring).
CONSENSUS_IDENTICAL_ATTACKS = [a for a in ALG1_ATTACKS if a not in ("replay", "fuzz")]


def _run(factory, *, n, t, ids, attack, seed, through_wire=False):
    return run_protocol(
        factory,
        n=n,
        t=t,
        ids=ids,
        adversary=make_adversary(attack),
        seed=seed,
        collect_trace=True,
        through_wire=through_wire,
    )


def _assert_identical(new, old, context, *, traffic=True):
    """Outputs, faulty slots, round counts and full traces must match.

    ``traffic=True`` additionally pins the correct processes' message and
    bit totals — byte-identical wire behaviour, which makes every attack
    (including traffic-reactive ones) see the same world.
    """
    assert new.byzantine == old.byzantine, context
    assert new.outputs == old.outputs, context
    assert new.metrics.round_count == old.metrics.round_count, context
    assert list(new.trace) == list(old.trace), context
    if traffic:
        assert new.metrics.correct_messages == old.metrics.correct_messages, context
        assert new.metrics.correct_bits == old.metrics.correct_bits, context


class TestAlg1Differential:
    N, T = 7, 2

    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    def test_identical_across_seeds(self, attack):
        ids = standard_ids(self.N)
        for seed in SEEDS:
            new = _run(
                lambda ctx: OrderPreservingRenaming(ctx),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            old = _run(
                lambda ctx: LegacyOrderPreservingRenaming(ctx),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            _assert_identical(new, old, f"alg1 {attack} seed={seed}")

    def test_early_deciding_identical(self):
        options = RenamingOptions(early_deciding=True)
        ids = standard_ids(self.N)
        for attack in ("silent", "conforming", "rank-skew"):
            for seed in SEEDS:
                new = _run(
                    lambda ctx: OrderPreservingRenaming(ctx, options),
                    n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
                )
                old = _run(
                    lambda ctx: LegacyOrderPreservingRenaming(ctx, options),
                    n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
                )
                _assert_identical(new, old, f"alg1-early {attack} seed={seed}")
                frozen_new = {
                    i: new.processes[i].frozen_at for i in new.correct
                }
                frozen_old = {
                    i: old.processes[i].frozen_at for i in old.correct
                }
                assert frozen_new == frozen_old, f"{attack} seed={seed}"


class TestConstantTimeDifferential:
    N, T = 9, 2  # N > t² + 2t

    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    def test_identical_across_seeds(self, attack):
        ids = standard_ids(self.N)
        for seed in SEEDS:
            new = _run(
                lambda ctx: ConstantTimeRenaming(ctx),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            old = _run(
                lambda ctx: LegacyConstantTimeRenaming(ctx),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            _assert_identical(new, old, f"alg1-constant {attack} seed={seed}")


class TestTwoStepDifferential:
    N, T = 11, 2  # N > 2t² + t

    @pytest.mark.parametrize("attack", ALG4_ATTACKS)
    def test_identical_across_seeds(self, attack):
        ids = standard_ids(self.N)
        for seed in SEEDS:
            new = _run(
                lambda ctx: TwoStepRenaming(ctx),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            old = _run(
                lambda ctx: LegacyTwoStepRenaming(ctx),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            _assert_identical(new, old, f"alg4 {attack} seed={seed}")


class TestTranslatedDifferential:
    N, T = 7, 2

    @pytest.mark.parametrize("attack", CRASH_ATTACKS)
    def test_identical_across_seeds(self, attack):
        ids = standard_ids(self.N)
        for seed in SEEDS:
            new = _run(
                lambda ctx: TranslatedByzantineRenaming(ctx),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            old = _run(
                lambda ctx: LegacyTranslatedByzantineRenaming(ctx),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            _assert_identical(new, old, f"translated {attack} seed={seed}")
            settled_new = {i: new.processes[i].settled_round for i in new.correct}
            settled_old = {i: old.processes[i].settled_round for i in old.correct}
            assert settled_new == settled_old, f"{attack} seed={seed}"


class TestConsensusDifferential:
    N, T = 7, 2

    @pytest.mark.parametrize("attack", CONSENSUS_IDENTICAL_ATTACKS)
    def test_identical_across_seeds(self, attack):
        ids = standard_ids(self.N)
        for seed in SEEDS:
            new = _run(
                consensus_renaming_factory(self.N, ids, seed),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            old = _run(
                legacy_consensus_factory(self.N, ids, seed),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            # The multiplexer splits the combined relay into per-source
            # envelopes, so message *counts* legitimately differ; outputs,
            # rounds and traces must not.
            _assert_identical(
                new, old, f"consensus {attack} seed={seed}", traffic=False
            )

    @pytest.mark.parametrize("attack", ["replay", "fuzz"])
    def test_traffic_reactive_attacks_keep_properties(self, attack):
        # Replay/fuzz react to observed bytes; the multiplexed wire shape is
        # different by design, so identity with the legacy run is not
        # defined. The renaming properties still must hold.
        ids = standard_ids(self.N)
        for seed in SEEDS:
            result = _run(
                consensus_renaming_factory(self.N, ids, seed),
                n=self.N, t=self.T, ids=ids, attack=attack, seed=seed,
            )
            assert result.metrics.round_count == self.T + 1
            assert_renaming_ok(
                result, namespace=self.N, context=f"consensus {attack} seed={seed}"
            )

    def test_through_wire_envelopes(self):
        # through_wire round-trips every correct message through the binary
        # codec — EnvelopeMessage traffic included.
        ids = standard_ids(self.N)
        for seed in range(5):
            base = _run(
                consensus_renaming_factory(self.N, ids, seed),
                n=self.N, t=self.T, ids=ids, attack="conforming", seed=seed,
            )
            wired = _run(
                consensus_renaming_factory(self.N, ids, seed),
                n=self.N, t=self.T, ids=ids, attack="conforming", seed=seed,
                through_wire=True,
            )
            assert base.outputs == wired.outputs
            assert list(base.trace) == list(wired.trace)


# --------------------------------------------------------------------- units


class RecordingPhase(Phase):
    """Toy phase logging every local step it is driven through."""

    def __init__(self, name, steps, journal):
        self.name = name
        self.steps = steps
        self._journal = journal

    def messages_for_step(self, step):
        self._journal.append((self.name, "send", step))
        return []

    def deliver_step(self, step, inbox):
        self._journal.append((self.name, "deliver", step))

    def result(self):
        return f"{self.name}-done"


def _ctx(n=4, t=1, my_id=1):
    return ProcessContext(n=n, t=t, my_id=my_id)


class TestPhaseSequence:
    def test_round_offset_virtualization(self):
        journal = []
        offsets = []

        def first(ctx, prev):
            offsets.append((ctx.offset, prev))
            return RecordingPhase("a", 2, journal)

        def second(ctx, prev):
            offsets.append((ctx.offset, prev))
            return RecordingPhase("b", 3, journal)

        seq = PhaseSequence(_ctx(), [first, second])
        for round_no in range(1, 6):
            seq.send(round_no)
            seq.deliver(round_no, {})
        # Phase a sees local steps 1..2 at global rounds 1..2; phase b sees
        # local steps 1..3 at global rounds 3..5.
        assert journal == [
            ("a", "send", 1), ("a", "deliver", 1),
            ("a", "send", 2), ("a", "deliver", 2),
            ("b", "send", 1), ("b", "deliver", 1),
            ("b", "send", 2), ("b", "deliver", 2),
            ("b", "send", 3), ("b", "deliver", 3),
        ]
        # Builders fire with the right offsets and threaded results.
        assert offsets == [(0, None), (2, "a-done")]
        assert seq.results == ["a-done", "b-done"]
        assert seq.done and seq.output_value == "b-done"

    def test_finish_maps_final_result(self):
        seq = PhaseSequence(
            _ctx(),
            [lambda ctx, prev: RecordingPhase("only", 1, [])],
            finish=lambda outcome: outcome.upper(),
        )
        seq.send(1)
        seq.deliver(1, {})
        assert seq.output_value == "ONLY-DONE"

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            PhaseSequence(_ctx(), [])

    def test_trace_offsets_land_on_global_rounds(self):
        events = []
        ctx = ProcessContext(
            n=4, t=1, my_id=1,
            trace=lambda round_no, event, detail: events.append((round_no, event)),
        )

        class Logging(RecordingPhase):
            def __init__(self, name, steps, phase_ctx):
                super().__init__(name, steps, [])
                self._phase_ctx = phase_ctx

            def deliver_step(self, step, inbox):
                self._phase_ctx.log(step, self.name)

        seq = PhaseSequence(
            ctx,
            [
                lambda c, p: Logging("first", 2, c),
                lambda c, p: Logging("second", 2, c),
            ],
        )
        for round_no in range(1, 5):
            seq.send(round_no)
            seq.deliver(round_no, {})
        assert events == [(1, "first"), (2, "first"), (3, "second"), (4, "second")]

    def test_id_selection_is_a_phase(self):
        phase = IdSelectionPhase(4, 1, 10)
        assert isinstance(phase, Phase)
        assert phase.steps == 4


class OneShot(Process):
    """Sub-protocol finishing after a single round; records its inbox."""

    def __init__(self, ctx, ident):
        super().__init__(ctx)
        self.ident = ident
        self.seen = None

    def send(self, round_no):
        return self.broadcast(IdMessage(self.ident))

    def deliver(self, round_no, inbox):
        self.seen = {link: tuple(msgs) for link, msgs in inbox.items()}
        self.output_value = self.ident


class TestMultiplexer:
    def test_send_wraps_in_tag_order(self):
        ctx = _ctx()
        mux = Multiplexer(ctx, {2: OneShot(ctx, 20), 1: OneShot(ctx, 10)})
        outbox = mux.send(1)
        messages = outbox[BROADCAST]
        assert messages == [
            EnvelopeMessage(tag=1, payload=IdMessage(10)),
            EnvelopeMessage(tag=2, payload=IdMessage(20)),
        ]

    def test_deliver_routes_unwraps_and_drops_noise(self):
        ctx = _ctx()
        a, b = OneShot(ctx, 10), OneShot(ctx, 20)
        mux = Multiplexer(ctx, {1: a, 2: b})
        inbox = {
            3: (
                EnvelopeMessage(tag=1, payload=IdMessage(77)),
                IdMessage(99),  # raw message: Byzantine noise, dropped
                EnvelopeMessage(tag=9, payload=IdMessage(1)),  # unknown tag
            ),
            1: (EnvelopeMessage(tag=1, payload=IdMessage(55)),),
        }
        mux.deliver(1, inbox)
        assert a.seen == {3: (IdMessage(77),), 1: (IdMessage(55),)}
        assert b.seen == {}  # instance 2 saw an empty inbox, not nothing

    def test_finishes_when_all_instances_finish(self):
        ctx = _ctx()
        mux = Multiplexer(
            ctx,
            {1: OneShot(ctx, 10), 2: OneShot(ctx, 20)},
            finish=lambda outputs: sorted(outputs.values()),
        )
        assert not mux.done
        mux.deliver(1, {})
        assert mux.done and mux.output_value == [10, 20]

    def test_done_instances_go_silent(self):
        ctx = _ctx()
        a, b = OneShot(ctx, 10), OneShot(ctx, 20)
        mux = Multiplexer(ctx, {1: a, 2: b})
        a.output_value = 10  # already finished
        outbox = mux.send(1)
        assert outbox[BROADCAST] == [EnvelopeMessage(tag=2, payload=IdMessage(20))]

    def test_empty_multiplexer_rejected(self):
        with pytest.raises(ValueError):
            Multiplexer(_ctx(), {})


class TestEnvelopeCodec:
    def test_roundtrip_nested_payloads(self):
        samples = [
            EnvelopeMessage(tag=0, payload=IdMessage(7)),
            EnvelopeMessage(tag=5, payload=RanksMessage.from_dict({3: 2})),
            EnvelopeMessage(
                tag=12,
                payload=EnvelopeMessage(tag=3, payload=IdMessage(1)),
            ),
        ]
        for message in samples:
            assert decode_message(encode_message(message)) == message

    def test_bit_model_upper_bounds_encoding(self):
        message = EnvelopeMessage(
            tag=6, payload=RanksMessage.from_dict({i: i for i in range(1, 9)})
        )
        assert encoded_bits(message) <= message.bit_size(id_bits=21, rank_bits=16)

    def test_unregistered_payload_rejected(self):
        from repro.sim.messages import Message

        class Strange(Message):
            pass

        with pytest.raises(WireError):
            encode_message(EnvelopeMessage(tag=1, payload=Strange()))

    def test_truncated_envelope_rejected(self):
        data = encode_message(EnvelopeMessage(tag=1, payload=IdMessage(5)))
        with pytest.raises(WireError):
            decode_message(data[:2])
