"""Adversary fuzzing: hypothesis searches seed space for property breaks.

Every discovered failure is a replayable counterexample (the seed fully
determines the run). None should exist — Theorem IV.10/VI.3 quantify over
all adversaries, and the fuzzer's behaviour atoms are all legal Byzantine
behaviours.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    OrderPreservingRenaming,
    SystemParams,
    TwoStepRenaming,
    run_protocol,
)
from repro.adversary import FuzzAdversary
from repro.analysis import check_renaming
from repro.workloads import make_ids

COMMON = dict(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    t=st.integers(min_value=1, max_value=3),
    slack=st.integers(min_value=0, max_value=3),
    intensity=st.floats(min_value=0.1, max_value=1.0),
)
def test_fuzz_alg1(seed, t, slack, intensity):
    n = 3 * t + 1 + slack
    ids = make_ids("uniform", n, seed=seed)
    result = run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=ids,
        adversary=FuzzAdversary(intensity=intensity),
        seed=seed,
    )
    report = check_renaming(result, SystemParams(n, t).namespace_bound)
    assert report.ok, (seed, n, t, intensity, report.violations)


@settings(**COMMON)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    t=st.integers(min_value=1, max_value=2),
    slack=st.integers(min_value=0, max_value=3),
)
def test_fuzz_alg4(seed, t, slack):
    n = 2 * t * t + t + 1 + slack
    ids = make_ids("uniform", n, seed=seed)
    result = run_protocol(
        TwoStepRenaming,
        n=n,
        t=t,
        ids=ids,
        adversary=FuzzAdversary(),
        seed=seed,
    )
    report = check_renaming(result, SystemParams(n, t).fast_namespace_bound)
    assert report.ok, (seed, n, t, report.violations)


@settings(**COMMON)
@given(seed=st.integers(min_value=0, max_value=10**9))
def test_fuzz_early_deciding(seed):
    """The early-deciding extension must survive fuzzing too: freezing can
    only happen at genuine fixed points."""
    from functools import partial

    from repro import RenamingOptions

    n, t = 7, 2
    result = run_protocol(
        partial(
            OrderPreservingRenaming,
            options=RenamingOptions(early_deciding=True),
        ),
        n=n,
        t=t,
        ids=make_ids("uniform", n, seed=seed),
        adversary=FuzzAdversary(),
        seed=seed,
    )
    report = check_renaming(result, SystemParams(n, t).namespace_bound)
    assert report.ok, (seed, report.violations)
