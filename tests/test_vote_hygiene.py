"""Payload-hygiene tests: malformed Byzantine payloads must never crash or
corrupt a correct process.

Found-by-adversarial-testing regression: ``float('nan')`` ranks pass the
``< δ`` rejection in ``isValid`` (every NaN comparison is False), survive
trimming unpredictably, and used to crash correct processes at ``Round()``.
String ids used to crash ``sorted()`` with mixed-type comparisons. These
tests lock the sanitization layer in place across every protocol.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from helpers import assert_renaming_ok, standard_ids
from repro import (
    OrderPreservingRenaming,
    SystemParams,
    TwoStepRenaming,
    run_protocol,
)
from repro.baselines import FloodSetRenaming, OkunCrashRenaming
from repro.core.messages import (
    EchoMessage,
    IdMessage,
    MultiEchoMessage,
    RanksMessage,
    ReadyMessage,
)
from repro.core.validation import is_sound_id, is_sound_rank, is_sound_vote
from repro.sim import Adversary


class PoisonAdversary(Adversary):
    """Floods every link with structurally malformed protocol payloads."""

    def _payloads(self):
        nan = float("nan")
        return [
            IdMessage("not-an-int"),
            IdMessage(None),
            IdMessage(-5),
            IdMessage(True),
            EchoMessage("x"),
            ReadyMessage(3.5),
            RanksMessage(entries=(("id", nan),)),
            RanksMessage(entries=((7, nan), (8, nan))),
            RanksMessage(entries=((7, float("inf")),)),
            RanksMessage(entries=((7, "high"),)),
            MultiEchoMessage(ids=("a", 5, None)),
            MultiEchoMessage(ids=(nan,)),
        ]

    def send(self, round_no, correct_outboxes):
        payloads = self._payloads()
        return {
            slot: {link: list(payloads) for link in self.ctx.topology.labels()}
            for slot in self.ctx.byzantine
        }


class NaNVoteAdversary(Adversary):
    """Behaves silently except for well-formed-looking NaN votes — the exact
    historical crash vector."""

    def send(self, round_no, correct_outboxes):
        correct_ids = sorted(self.ctx.ids[i] for i in self.ctx.correct)
        vote = RanksMessage.from_dict({i: float("nan") for i in correct_ids})
        return {
            slot: {link: [vote] for link in self.ctx.topology.labels()}
            for slot in self.ctx.byzantine
        }


class TestSoundnessHelpers:
    def test_sound_ranks(self):
        assert is_sound_rank(3)
        assert is_sound_rank(Fraction(7, 2))
        assert is_sound_rank(3.5)
        assert not is_sound_rank(float("nan"))
        assert not is_sound_rank(float("inf"))
        assert not is_sound_rank(float("-inf"))
        assert not is_sound_rank("3")
        assert not is_sound_rank(None)
        assert not is_sound_rank(True)

    def test_sound_ids(self):
        assert is_sound_id(1)
        assert is_sound_id(10**18)
        assert not is_sound_id(0)
        assert not is_sound_id(-3)
        assert not is_sound_id(True)
        assert not is_sound_id("5")
        assert not is_sound_id(5.0)

    def test_sound_votes(self):
        assert is_sound_vote({1: Fraction(1), 2: 2.5})
        assert not is_sound_vote({1: float("nan")})
        assert not is_sound_vote({"1": Fraction(1)})
        assert not is_sound_vote({1: Fraction(1), 2: "x"})


class TestPoisonResilience:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_alg1_survives_poison(self, seed):
        result = run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=PoisonAdversary(),
            seed=seed,
        )
        assert_renaming_ok(result, SystemParams(7, 2).namespace_bound)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_alg4_survives_poison(self, seed):
        result = run_protocol(
            TwoStepRenaming,
            n=11,
            t=2,
            ids=standard_ids(11),
            adversary=PoisonAdversary(),
            seed=seed,
        )
        assert_renaming_ok(result, 121)

    def test_okun_survives_poison(self):
        result = run_protocol(
            OkunCrashRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=PoisonAdversary(),
            seed=0,
        )
        assert_renaming_ok(result, 7)

    def test_floodset_survives_poison(self):
        result = run_protocol(
            FloodSetRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=PoisonAdversary(),
            seed=0,
        )
        assert_renaming_ok(result, 7)

    def test_nan_votes_regression(self):
        """The exact historical crash: NaN ranks through isValid."""
        result = run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=NaNVoteAdversary(),
            seed=0,
        )
        assert_renaming_ok(result, SystemParams(7, 2).namespace_bound)

    def test_aa_survives_nan(self):
        from repro.agreement import initial_values_factory
        from repro.agreement.approximate import ValueMessage

        class NaNValues(Adversary):
            def send(self, round_no, correct_outboxes):
                message = ValueMessage(float("nan"))
                return {
                    slot: {
                        link: [message]
                        for link in self.ctx.topology.labels()
                    }
                    for slot in self.ctx.byzantine
                }

        ids = standard_ids(7)
        values = {identifier: Fraction(identifier) for identifier in ids}
        result = run_protocol(
            initial_values_factory(values, rounds=4),
            n=7,
            t=2,
            ids=ids,
            adversary=NaNValues(),
            seed=0,
        )
        correct_inputs = [values[result.ids[i]] for i in result.correct]
        for index in result.correct:
            value = result.outputs[index]
            assert min(correct_inputs) <= value <= max(correct_inputs)
