"""Hostile-input fuzzing of the service frame layer.

The contract under test (``repro.service.frames``): whatever bytes arrive
— truncated, oversized, bit-flipped, arbitrarily chunked — the decoder
either yields messages or raises a typed
:class:`~repro.wire.WireError`/:class:`~repro.service.frames.FrameError`.
It never hangs, never raises anything untyped, and never buffers a body
whose header already exceeds the cap.
"""

from __future__ import annotations

import asyncio
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.frames import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
    read_frame,
)
from repro.service.messages import (
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    RegisterIdsMessage,
    SessionErrorMessage,
)
from repro.wire import WireError

MESSAGES = st.one_of(
    st.builds(
        OpenSessionMessage,
        algorithm=st.text(max_size=32),
        t=st.integers(min_value=0, max_value=50),
        attack=st.text(max_size=32),
        seed=st.integers(min_value=0, max_value=2**31),
    ),
    st.builds(
        RegisterIdsMessage,
        ids=st.tuples()
        | st.lists(st.integers(min_value=1, max_value=2**40), max_size=16).map(tuple),
    ),
    st.builds(CloseSessionMessage),
    st.builds(
        SessionErrorMessage,
        code=st.text(max_size=16),
        detail=st.text(max_size=64),
        trace_pointer=st.integers(min_value=-1, max_value=2**20),
    ),
    st.builds(
        NamesAssignedMessage,
        entries=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=2**20),
                st.integers(min_value=1, max_value=2**20),
            ),
            max_size=12,
        ).map(tuple),
        algorithm=st.text(max_size=16),
        rounds=st.integers(min_value=0, max_value=1000),
    ),
)


class TestRoundTrip:
    @given(messages=st.lists(MESSAGES, min_size=1, max_size=8), data=st.data())
    @settings(max_examples=150, deadline=None)
    def test_any_chunking_reassembles_the_stream(self, messages, data):
        blob = b"".join(encode_frame(m) for m in messages)
        decoder = FrameDecoder()
        out = []
        position = 0
        while position < len(blob):
            size = data.draw(
                st.integers(min_value=1, max_value=len(blob) - position)
            )
            out.extend(decoder.feed(blob[position:position + size]))
            position += size
        assert out == messages
        decoder.eof()  # stream ended exactly on a frame boundary

    def test_single_byte_trickle(self):
        message = RegisterIdsMessage(ids=(1, 2, 3))
        decoder = FrameDecoder()
        out = []
        for byte in encode_frame(message):
            out.extend(decoder.feed(bytes([byte])))
        assert out == [message]


class TestHostileInput:
    @given(garbage=st.binary(min_size=0, max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_never_raise_untyped(self, garbage):
        decoder = FrameDecoder(max_frame_bytes=128)
        try:
            decoder.feed(garbage)
            decoder.eof()
        except WireError:
            pass  # typed rejection is the contract

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_bit_flipped_frames_fail_typed_or_decode(self, data):
        message = data.draw(MESSAGES)
        blob = bytearray(encode_frame(message))
        position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[position] ^= 1 << bit
        decoder = FrameDecoder()
        try:
            decoder.feed(bytes(blob))
            decoder.eof()
        except WireError:
            pass  # flips in the header or payload must stay typed

    def test_truncated_stream_is_detectable(self):
        blob = encode_frame(CloseSessionMessage())
        decoder = FrameDecoder()
        assert decoder.feed(blob[:-1]) == []
        assert decoder.pending == len(blob) - 1
        with pytest.raises(FrameError, match="mid-frame"):
            decoder.eof()

    def test_zero_length_frame_is_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError, match="zero-length"):
            decoder.feed(struct.pack(">I", 0))

    def test_oversize_header_rejected_without_the_body(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        # Header alone, body never sent: the declared size is enough.
        with pytest.raises(FrameError, match="cap"):
            decoder.feed(struct.pack(">I", 2**31))
        assert decoder.pending <= HEADER_BYTES

    def test_oversize_encode_is_rejected(self):
        big = NamesAssignedMessage(
            entries=tuple((i + 1, i + 1) for i in range(64)),
            algorithm="alg1",
            rounds=1,
        )
        with pytest.raises(FrameError):
            encode_frame(big, max_frame_bytes=16)

    def test_poisoned_decoder_refuses_more_input(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(struct.pack(">I", 0))
        with pytest.raises(FrameError, match="already rejected"):
            decoder.feed(encode_frame(CloseSessionMessage()))

    def test_garbage_payload_of_valid_length_is_typed(self):
        payload = b"\xff" * 10  # tag 255 is unregistered
        decoder = FrameDecoder()
        with pytest.raises(WireError):
            decoder.feed(struct.pack(">I", len(payload)) + payload)


class TestAsyncReadFrame:
    def _serve_bytes(self, blob: bytes, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(blob)
            reader.feed_eof()
            frames = []
            while True:
                frame = await read_frame(reader, max_frame_bytes=max_frame_bytes)
                if frame is None:
                    return frames
                frames.append(frame)

        return asyncio.run(main())

    def test_reads_messages_then_none_on_eof(self):
        msgs = [OpenSessionMessage(), CloseSessionMessage()]
        blob = b"".join(encode_frame(m) for m in msgs)
        assert self._serve_bytes(blob) == msgs

    def test_mid_frame_eof_is_none_not_hang(self):
        blob = encode_frame(OpenSessionMessage())[:-2]
        assert self._serve_bytes(blob) == []

    def test_oversize_header_raises_before_body(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 2**30))
            with pytest.raises(FrameError, match="cap"):
                await read_frame(reader, max_frame_bytes=64)

        asyncio.run(main())

    def test_zero_length_header_raises(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 0))
            with pytest.raises(FrameError, match="zero-length"):
                await read_frame(reader)

        asyncio.run(main())
