"""Unit tests for SystemParams: every closed-form bound the paper proves."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SystemParams


class TestValidation:
    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            SystemParams(0, 0)

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            SystemParams(4, 4)
        with pytest.raises(ValueError):
            SystemParams(4, -1)

    def test_fault_free_allowed(self):
        assert SystemParams(3, 0).tolerates_byzantine


class TestRegimes:
    @pytest.mark.parametrize(
        "n,t,expected", [(7, 2, True), (6, 2, False), (4, 1, True), (3, 1, False)]
    )
    def test_byzantine_resilience(self, n, t, expected):
        assert SystemParams(n, t).tolerates_byzantine is expected

    @pytest.mark.parametrize(
        "n,t,expected", [(4, 1, True), (3, 1, False), (9, 2, True), (8, 2, False)]
    )
    def test_constant_time_regime(self, n, t, expected):
        # N > t^2 + 2t
        assert SystemParams(n, t).in_constant_time_regime is expected

    @pytest.mark.parametrize(
        "n,t,expected", [(4, 1, True), (3, 1, False), (11, 2, True), (10, 2, False)]
    )
    def test_fast_regime(self, n, t, expected):
        # N > 2t^2 + t
        assert SystemParams(n, t).in_fast_regime is expected

    def test_require_raises_outside_regime(self):
        with pytest.raises(ValueError):
            SystemParams(6, 2).require_byzantine_resilience()
        with pytest.raises(ValueError):
            SystemParams(8, 2).require_constant_time_regime()
        with pytest.raises(ValueError):
            SystemParams(10, 2).require_fast_regime()

    def test_require_passes_inside_regime(self):
        SystemParams(7, 2).require_byzantine_resilience()
        SystemParams(9, 2).require_constant_time_regime()
        SystemParams(11, 2).require_fast_regime()


class TestDelta:
    def test_formula(self):
        assert SystemParams(7, 2).delta == 1 + Fraction(1, 27)

    def test_exact_fraction(self):
        delta = SystemParams(10, 3).delta
        assert isinstance(delta, Fraction)
        assert delta == Fraction(40, 39)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=60))
    def test_delta_strictly_above_one(self, n, extra):
        t = min(extra, n - 1)
        delta = SystemParams(n, t).delta
        assert 1 < delta <= Fraction(4, 3)


class TestRoundCounts:
    @pytest.mark.parametrize(
        "t,expected_total",
        [(0, 7), (1, 7), (2, 10), (3, 13), (4, 13), (5, 16), (8, 16), (9, 19)],
    )
    def test_total_rounds_formula(self, t, expected_total):
        n = max(3 * t + 1, 2)
        params = SystemParams(n, t)
        assert params.total_rounds == expected_total
        assert params.voting_rounds == expected_total - 4

    def test_constant_time_rounds(self):
        params = SystemParams(9, 2)
        assert params.constant_time_voting_rounds == 4
        assert params.constant_time_total_rounds == 8

    def test_matches_paper_formula_for_positive_t(self):
        for t in range(1, 20):
            params = SystemParams(3 * t + 1, t)
            assert params.total_rounds == 3 * math.ceil(math.log2(t)) + 7


class TestSigma:
    @pytest.mark.parametrize("n,t,expected", [(7, 2, 2), (13, 3, 3), (9, 2, 3), (4, 1, 3)])
    def test_formula(self, n, t, expected):
        assert SystemParams(n, t).sigma == expected

    def test_fault_free_sigma(self):
        assert SystemParams(5, 0).sigma == 6

    @given(st.integers(min_value=1, max_value=30))
    def test_constant_regime_sigma_at_least_t_plus_one(self, t):
        # Lemma V.2's argument needs sigma ≥ t + 1 whenever N > t^2 + 2t.
        # (The paper states the inequality strictly, but at the regime
        # boundary N = t^2 + 2t + 1 the floor gives exactly t + 1; see
        # EXPERIMENTS.md E4 for the measured slack.)
        params = SystemParams(t * t + 2 * t + 1, t)
        assert params.sigma >= t + 1


class TestNamespaceBounds:
    @pytest.mark.parametrize("n,t", [(7, 2), (10, 3), (13, 4), (4, 1)])
    def test_accepted_bound_at_most_namespace_bound(self, n, t):
        params = SystemParams(n, t)
        assert params.accepted_bound <= params.namespace_bound

    def test_accepted_bound_formula(self):
        assert SystemParams(7, 2).accepted_bound == 7 + 4 // 3  # = 8
        assert SystemParams(9, 2).accepted_bound == 9  # constant-time regime

    def test_constant_regime_accepted_bound_is_n(self):
        for t in (1, 2, 3, 4):
            params = SystemParams(t * t + 2 * t + 1, t)
            assert params.accepted_bound == params.n

    def test_namespace_bound_fault_free(self):
        assert SystemParams(5, 0).namespace_bound == 5

    def test_fast_namespace(self):
        assert SystemParams(11, 2).fast_namespace_bound == 121

    def test_fast_bounds(self):
        params = SystemParams(11, 2)
        assert params.fast_discrepancy_bound == 8
        assert params.fast_min_gap == 9

    def test_fast_gap_absorbs_discrepancy_in_regime(self):
        # The Theorem VI.3 inequality: N - t - 2t^2 > 0 in the fast regime.
        for t in (1, 2, 3):
            params = SystemParams(2 * t * t + t + 1, t)
            assert params.fast_min_gap > params.fast_discrepancy_bound

    def test_accepted_bound_requires_n_over_2t(self):
        with pytest.raises(ValueError):
            SystemParams(4, 2).accepted_bound


class TestConvergenceTargets:
    def test_convergence_target(self):
        params = SystemParams(7, 2)
        assert params.convergence_target == Fraction(1, 54)

    def test_initial_spread_bound(self):
        params = SystemParams(7, 2)
        assert params.initial_spread_bound == 3 * params.delta

    @given(st.integers(min_value=5, max_value=24))
    def test_scheduled_rounds_reach_target_for_large_t(self, t):
        """Lemma IV.9 end-to-end: contracting the worst initial spread by
        sigma per scheduled voting round lands below (delta-1)/2.

        Reproduction finding (see EXPERIMENTS.md, E3): at minimal resilience
        N = 3t+1 the paper's chain is numerically loose for t in {1, 2, 4} —
        2t·delta / sigma^rounds exceeds (delta-1)/2 there. The *conclusion*
        (order preservation) is unaffected because inversion needs a spread
        of at least delta, and the contracted spread is below delta/(4t^2)
        for every t (checked in the companion test); the tight chain holds
        from t = 5 up (and for t = 3).
        """
        params = SystemParams(3 * t + 1, t)
        spread = params.initial_spread_bound
        for _ in range(params.voting_rounds):
            spread = spread / params.sigma
        assert spread < params.convergence_target

    @given(st.integers(min_value=1, max_value=24))
    def test_scheduled_rounds_exclude_inversion_for_all_t(self, t):
        """The weaker-but-sufficient guarantee for every t: the contracted
        worst-case spread stays strictly below delta, so adjacent correct
        ranks can never invert (Corollary IV.6 + Lemma IV.8)."""
        params = SystemParams(3 * t + 1, t)
        spread = params.initial_spread_bound
        for _ in range(params.voting_rounds):
            spread = spread / params.sigma
        assert spread < params.delta / 4
