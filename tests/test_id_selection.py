"""Unit tests for the 4-step id-selection phase (driven sans-I/O and in-sim)."""

from __future__ import annotations

import pytest

from repro.core import EchoMessage, IdMessage, IdSelectionPhase, ReadyMessage
from repro.core.messages import RanksMessage


def feed(phase: IdSelectionPhase, step: int, per_link):
    """Deliver a hand-crafted inbox: {link: [messages]}."""
    phase.deliver_step(step, {link: tuple(msgs) for link, msgs in per_link.items()})


def run_uniform(n: int, t: int, ids, my_id):
    """Drive a phase as if all n processes (ids given) behaved correctly."""
    phase = IdSelectionPhase(n, t, my_id)
    phase.messages_for_step(1)
    feed(phase, 1, {link: [IdMessage(ids[link - 1])] for link in range(1, n + 1)})
    phase.messages_for_step(2)
    feed(
        phase,
        2,
        {link: [EchoMessage(i) for i in ids] for link in range(1, n + 1)},
    )
    phase.messages_for_step(3)
    feed(
        phase,
        3,
        {link: [ReadyMessage(i) for i in ids] for link in range(1, n + 1)},
    )
    phase.messages_for_step(4)
    feed(phase, 4, {})
    return phase


class TestHappyPath:
    def test_all_ids_timely_and_accepted(self):
        ids = [10, 20, 30, 40, 50]
        phase = run_uniform(5, 1, ids, my_id=30)
        assert phase.timely == frozenset(ids)
        assert phase.accepted == frozenset(ids)

    def test_sorted_accepted_and_ranks(self):
        phase = run_uniform(5, 1, [50, 10, 40, 20, 30], my_id=30)
        assert phase.sorted_accepted() == (10, 20, 30, 40, 50)
        assert phase.rank_of(10) == 1
        assert phase.rank_of(50) == 5

    def test_step1_messages(self):
        phase = IdSelectionPhase(4, 1, 99)
        assert phase.messages_for_step(1) == [IdMessage(99)]

    def test_step2_echoes_pending(self):
        phase = IdSelectionPhase(4, 1, 99)
        phase.messages_for_step(1)
        feed(phase, 1, {1: [IdMessage(5)], 2: [IdMessage(3)]})
        echoes = phase.messages_for_step(2)
        assert echoes == [EchoMessage(3), EchoMessage(5)]

    def test_invalid_step_rejected(self):
        phase = IdSelectionPhase(4, 1, 1)
        with pytest.raises(ValueError):
            phase.messages_for_step(5)
        with pytest.raises(ValueError):
            phase.deliver_step(0, {})


class TestThresholds:
    """Hand-crafted inboxes around the N−t / N−2t thresholds (n=7, t=2)."""

    def make(self):
        return IdSelectionPhase(7, 2, 10)

    def test_echo_below_threshold_dropped(self):
        phase = self.make()
        phase.messages_for_step(1)
        feed(phase, 1, {1: [IdMessage(10)]})
        phase.messages_for_step(2)
        # Only 4 < N-t = 5 links echo id 10.
        feed(phase, 2, {link: [EchoMessage(10)] for link in (1, 2, 3, 4)})
        assert phase.messages_for_step(3) == []

    def test_echo_at_threshold_kept(self):
        phase = self.make()
        phase.messages_for_step(1)
        feed(phase, 1, {1: [IdMessage(10)]})
        phase.messages_for_step(2)
        feed(phase, 2, {link: [EchoMessage(10)] for link in (1, 2, 3, 4, 5)})
        assert phase.messages_for_step(3) == [ReadyMessage(10)]

    def test_duplicate_echoes_on_one_link_count_once(self):
        phase = self.make()
        phase.messages_for_step(1)
        feed(phase, 1, {1: [IdMessage(10)]})
        phase.messages_for_step(2)
        feed(
            phase,
            2,
            {
                1: [EchoMessage(10), EchoMessage(10), EchoMessage(10)],
                2: [EchoMessage(10)],
                3: [EchoMessage(10)],
                4: [EchoMessage(10)],
            },
        )
        assert phase.messages_for_step(3) == []  # 4 distinct links < 5

    def test_timely_needs_full_threshold_in_step3(self):
        phase = self.make()
        for step in (1, 2):
            phase.messages_for_step(step)
            feed(phase, step, {})
        phase.messages_for_step(3)
        feed(phase, 3, {link: [ReadyMessage(77)] for link in (1, 2, 3, 4)})
        assert 77 not in phase.timely

    def test_amplification_at_n_minus_2t(self):
        # N-2t = 3 READYs trigger a step-4 READY from a process that had
        # not confirmed the id itself (lines 19-20 of Alg. 1).
        phase = self.make()
        for step in (1, 2):
            phase.messages_for_step(step)
            feed(phase, step, {})
        phase.messages_for_step(3)
        feed(phase, 3, {link: [ReadyMessage(77)] for link in (1, 2, 3)})
        assert phase.messages_for_step(4) == [ReadyMessage(77)]

    def test_no_amplification_below_n_minus_2t(self):
        phase = self.make()
        for step in (1, 2):
            phase.messages_for_step(step)
            feed(phase, step, {})
        phase.messages_for_step(3)
        feed(phase, 3, {link: [ReadyMessage(77)] for link in (1, 2)})
        assert phase.messages_for_step(4) == []

    def test_no_amplification_if_already_readied(self):
        phase = self.make()
        phase.messages_for_step(1)
        feed(phase, 1, {1: [IdMessage(10)]})
        phase.messages_for_step(2)
        feed(phase, 2, {link: [EchoMessage(10)] for link in (1, 2, 3, 4, 5)})
        assert phase.messages_for_step(3) == [ReadyMessage(10)]
        feed(phase, 3, {link: [ReadyMessage(10)] for link in (1, 2, 3)})
        # Already sent READY for 10 in step 3; must not repeat in step 4.
        assert phase.messages_for_step(4) == []

    def test_accepted_accumulates_readies_across_steps(self):
        phase = self.make()
        for step in (1, 2):
            phase.messages_for_step(step)
            feed(phase, step, {})
        phase.messages_for_step(3)
        feed(phase, 3, {link: [ReadyMessage(77)] for link in (1, 2, 3)})
        phase.messages_for_step(4)
        feed(phase, 4, {link: [ReadyMessage(77)] for link in (4, 5)})
        # 3 links in step 3 + 2 fresh links in step 4 = 5 >= N-t.
        assert 77 in phase.accepted

    def test_same_link_ready_in_both_steps_counts_once(self):
        phase = self.make()
        for step in (1, 2):
            phase.messages_for_step(step)
            feed(phase, step, {})
        phase.messages_for_step(3)
        feed(phase, 3, {link: [ReadyMessage(77)] for link in (1, 2, 3, 4)})
        phase.messages_for_step(4)
        feed(phase, 4, {link: [ReadyMessage(77)] for link in (1, 2, 3, 4)})
        assert 77 not in phase.accepted  # still only 4 distinct links

    def test_first_id_per_link_wins(self):
        phase = self.make()
        phase.messages_for_step(1)
        feed(phase, 1, {1: [IdMessage(5), IdMessage(6)]})
        assert phase.messages_for_step(2) == [EchoMessage(5)]

    def test_wrong_kind_messages_ignored(self):
        phase = self.make()
        phase.messages_for_step(1)
        feed(
            phase,
            1,
            {1: [EchoMessage(5), ReadyMessage(5), RanksMessage(entries=())]},
        )
        assert phase.messages_for_step(2) == []
