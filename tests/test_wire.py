"""Tests for the binary wire codec, including bit-model grounding."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.agreement.approximate import ValueMessage
from repro.agreement.eig import RelayMessage
from repro.baselines.splitting import ClaimMessage
from repro.broadcast.bracha import InitialMessage
from repro.core.messages import (
    EchoMessage,
    IdMessage,
    MultiEchoMessage,
    RanksMessage,
    ReadyMessage,
)
from repro.service.messages import (
    CertificateMessage,
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    QueryRequestMessage,
    QueryResponseMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)
from repro.sim.compose import EnvelopeMessage
from repro.wire import (
    WireError,
    decode_message,
    encode_message,
    encoded_bits,
    read_varint,
    wire_types,
    write_varint,
)

ids_st = st.integers(min_value=1, max_value=2**40)
# Denominators are bounded so numerator × denominator stays inside the
# codec's 127-bit varint cap (protocol ranks are ~n², far inside; an
# unbounded draw can exceed the cap and trip the DoS guard by design).
ranks_st = st.fractions(
    min_value=-10**6, max_value=10**6, max_denominator=10**18
)


class TestVarints:
    @given(st.integers(min_value=0, max_value=2**70))
    def test_roundtrip(self, value):
        out = bytearray()
        write_varint(value, out)
        decoded, offset = read_varint(bytes(out), 0)
        assert decoded == value and offset == len(out)

    def test_small_values_one_byte(self):
        out = bytearray()
        write_varint(127, out)
        assert len(out) == 1

    def test_negative_rejected(self):
        with pytest.raises(WireError):
            write_varint(-1, bytearray())

    def test_truncated_rejected(self):
        out = bytearray()
        write_varint(10**9, out)
        with pytest.raises(WireError):
            read_varint(bytes(out[:-1]), 0)


class TestRoundtrips:
    @given(identifier=ids_st)
    def test_control_messages(self, identifier):
        for cls in (IdMessage, EchoMessage, ReadyMessage):
            message = cls(identifier)
            assert decode_message(encode_message(message)) == message

    @given(entries=st.dictionaries(ids_st, ranks_st, max_size=12))
    def test_ranks_message(self, entries):
        message = RanksMessage.from_dict(entries)
        assert decode_message(encode_message(message)) == message

    @given(ids=st.lists(ids_st, max_size=15))
    def test_multiecho(self, ids):
        message = MultiEchoMessage.from_ids(ids)
        assert decode_message(encode_message(message)) == message

    @given(value=ranks_st)
    def test_value_message(self, value):
        message = ValueMessage(value)
        assert decode_message(encode_message(message)) == message

    def test_float_value_exact(self):
        message = ValueMessage(0.1)
        decoded = decode_message(encode_message(message))
        # Encoded as the float's exact binary fraction.
        assert decoded.value == Fraction(*(0.1).as_integer_ratio())

    @given(identifier=ids_st, lo=st.integers(1, 100), width=st.integers(0, 50))
    def test_claim(self, identifier, lo, width):
        message = ClaimMessage(identifier, lo, lo + width)
        assert decode_message(encode_message(message)) == message

    def test_relay(self):
        message = RelayMessage(
            entries=(((0, 3), 42), ((1,), -7), ((), 5))
        )
        assert decode_message(encode_message(message)) == message

    @given(value=st.integers(min_value=-10**9, max_value=10**9))
    def test_broadcast_values(self, value):
        message = InitialMessage(value)
        assert decode_message(encode_message(message)) == message

    def test_every_registered_type_roundtrips(self):
        samples = {
            "IdMessage": IdMessage(5),
            "EchoMessage": EchoMessage(5),
            "ReadyMessage": ReadyMessage(5),
            "InitialMessage": InitialMessage(9),
            "EchoValueMessage": None,
            "ReadyValueMessage": None,
            "PhaseValueMessage": None,
            "KingMessage": None,
            "RanksMessage": RanksMessage.from_dict({1: Fraction(3, 2)}),
            "MultiEchoMessage": MultiEchoMessage.from_ids([1, 2]),
            "ValueMessage": ValueMessage(Fraction(1, 3)),
            "ClaimMessage": ClaimMessage(4, 1, 8),
            "RelayMessage": RelayMessage(entries=(((2,), 6),)),
            "EnvelopeMessage": EnvelopeMessage(
                tag=3, payload=RelayMessage(entries=(((1,), 9),))
            ),
            "OpenSessionMessage": OpenSessionMessage(
                algorithm="auto", t=2, attack="conforming", seed=11,
                session_id="load-42",
            ),
            "QueryRequestMessage": QueryRequestMessage(session_id="load-42"),
            "QueryResponseMessage": QueryResponseMessage(
                session_id="load-42", state="completed"
            ),
            "RegisterIdsMessage": RegisterIdsMessage(ids=(4, 9, 17)),
            "CloseSessionMessage": CloseSessionMessage(),
            "SessionWelcomeMessage": SessionWelcomeMessage(
                session_id=3, max_ids=128, deadline_ms=5000
            ),
            "ServerBusyMessage": ServerBusyMessage(active=8, limit=8),
            "NamesAssignedMessage": NamesAssignedMessage(
                entries=((4, 1), (9, 2)), algorithm="alg4", rounds=2
            ),
            "CertificateMessage": CertificateMessage(
                namespace=10,
                ok=False,
                checked=("validity", "uniqueness"),
                violations=("uniqueness: name 2 assigned twice",),
            ),
            "SessionErrorMessage": SessionErrorMessage(
                code="wire", detail="bad frame", trace_pointer=-1
            ),
        }
        for cls in wire_types():
            sample = samples.get(cls.__name__)
            if sample is None:
                sample = cls(7)
            assert decode_message(encode_message(sample)) == sample


class TestMalformed:
    def test_empty(self):
        with pytest.raises(WireError):
            decode_message(b"")

    def test_unknown_tag(self):
        with pytest.raises(WireError):
            decode_message(bytes([200]))

    def test_trailing_garbage(self):
        data = encode_message(IdMessage(5)) + b"\x00"
        with pytest.raises(WireError):
            decode_message(data)

    def test_zero_denominator(self):
        good = bytearray(encode_message(ValueMessage(Fraction(1, 3))))
        good[-1] = 0  # denominator varint -> 0
        with pytest.raises(WireError):
            decode_message(bytes(good))

    def test_unregistered_type(self):
        from repro.sim.messages import Message

        class Strange(Message):
            pass

        with pytest.raises(WireError):
            encode_message(Strange())


class TestBitModelGrounding:
    """The bit_size model must track real encoded sizes (experiment E6's
    accounting is only meaningful if it does). The model is an upper-bound
    style estimate with fixed per-field widths; real varint encodings of
    laptop-scale payloads must come in at or under it."""

    def test_control_messages_within_model(self):
        for identifier in (1, 1000, 2**20):
            for cls in (IdMessage, EchoMessage, ReadyMessage):
                message = cls(identifier)
                assert encoded_bits(message) <= message.bit_size(id_bits=21) + 16

    def test_ranks_message_scales_with_model(self):
        small = RanksMessage.from_dict({1: Fraction(3, 2)})
        big = RanksMessage.from_dict(
            {i: Fraction(i, 3) + i for i in range(1, 20)}
        )
        assert encoded_bits(big) > encoded_bits(small)
        assert encoded_bits(big) <= big.bit_size(id_bits=21, rank_bits=16)

    def test_multiecho_within_model(self):
        message = MultiEchoMessage.from_ids(range(1, 30))
        assert encoded_bits(message) <= message.bit_size(id_bits=21) + 16
