"""Tests for run archiving (JSON) and sweep export (CSV)."""

from __future__ import annotations

import csv
import json
from fractions import Fraction

from helpers import standard_ids
from repro import OrderPreservingRenaming, run_protocol
from repro.adversary import make_adversary
from repro.analysis import (
    CSV_FIELDS,
    SweepConfig,
    dump_run,
    export_csv,
    load_run,
    run_sweep,
    run_to_dict,
)


def traced_run(seed=2):
    return run_protocol(
        OrderPreservingRenaming,
        n=7,
        t=2,
        ids=standard_ids(7),
        adversary=make_adversary("divergence"),
        seed=seed,
        collect_trace=True,
    )


class TestRunArchive:
    def test_roundtrip_outputs(self, tmp_path):
        result = traced_run()
        path = dump_run(result, tmp_path / "run.json")
        archive = load_run(path)
        assert archive.n == result.n and archive.t == result.t
        assert archive.byzantine == result.byzantine
        assert archive.new_names() == result.new_names()
        assert archive.correct == result.correct

    def test_roundtrip_trace_with_fractions(self, tmp_path):
        result = traced_run()
        archive = load_run(dump_run(result, tmp_path / "run.json"))
        ranks_events = [e for e in archive.trace if e["event"] == "ranks"]
        assert ranks_events
        # Fractions survive the JSON roundtrip exactly.
        original = [
            e.detail for e in result.trace.select(event="ranks")
        ]
        restored = [e["detail"] for e in ranks_events]
        assert restored == original
        assert any(
            isinstance(v, Fraction)
            for detail in restored
            for v in detail.values()
        )

    def test_metrics_preserved(self, tmp_path):
        result = traced_run()
        archive = load_run(dump_run(result, tmp_path / "run.json"))
        assert len(archive.metrics["rounds"]) == result.metrics.round_count
        assert (
            archive.metrics["peak_message_bits"]
            == result.metrics.peak_message_bits
        )

    def test_untraced_run_archivable(self, tmp_path):
        result = run_protocol(
            OrderPreservingRenaming, n=7, t=2, ids=standard_ids(7), seed=0
        )
        archive = load_run(dump_run(result, tmp_path / "run.json"))
        assert archive.trace == []
        assert archive.new_names() == result.new_names()

    def test_schema_version_enforced(self, tmp_path):
        result = traced_run()
        payload = run_to_dict(result)
        payload["schema"] = 99
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        import pytest

        with pytest.raises(ValueError):
            load_run(path)

    def test_json_is_plain(self, tmp_path):
        """The file on disk must be loadable by any JSON parser."""
        path = dump_run(traced_run(), tmp_path / "run.json")
        json.loads(path.read_text())


class TestCsvExport:
    def test_schema_and_rows(self, tmp_path):
        records = run_sweep(
            SweepConfig(algorithms=["alg1"], sizes=[(7, 2)], seeds=[0, 1])
        )
        path = export_csv(records, tmp_path / "sweep.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == CSV_FIELDS
        assert len(rows) == 3
        by_field = dict(zip(CSV_FIELDS, rows[1]))
        assert by_field["algorithm"] == "alg1"
        assert by_field["order_preservation"] == "1"
        assert by_field["violations"] == ""

    def test_violations_recorded(self, tmp_path):
        from functools import partial

        from repro import RenamingOptions
        from repro.analysis import check_renaming, run_experiment
        from repro.analysis.experiments import ExperimentRecord

        # Build a record from an ablated run that breaks, and check the CSV
        # row carries the violation text.
        from repro.workloads import make_ids

        ids = make_ids("uniform", 7, seed=0)
        result = run_protocol(
            partial(
                OrderPreservingRenaming,
                options=RenamingOptions(validate_votes=False),
            ),
            n=7,
            t=2,
            ids=ids,
            adversary=make_adversary("divergence"),
            seed=0,
        )
        report = check_renaming(result, 8)
        record = ExperimentRecord(
            algorithm="alg1-ablated",
            n=7,
            t=2,
            attack="divergence",
            seed=0,
            rounds=result.metrics.round_count,
            correct_messages=result.metrics.correct_messages,
            correct_bits=result.metrics.correct_bits,
            peak_message_bits=result.metrics.peak_message_bits,
            report=report,
            result=result,
        )
        path = export_csv([record], tmp_path / "bad.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        by_field = dict(zip(CSV_FIELDS, rows[1]))
        assert by_field["uniqueness"] == "0" or by_field["order_preservation"] == "0"
        assert by_field["violations"]
