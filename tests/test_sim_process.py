"""Unit tests for the Process base class and its helpers."""

from __future__ import annotations

from repro.core.messages import EchoMessage, IdMessage
from repro.sim import BROADCAST, Process, ProcessContext, iter_inbox, ordered_links


class Trivial(Process):
    def send(self, round_no):
        return {}

    def deliver(self, round_no, inbox):
        pass


class TestProcessBase:
    def test_broadcast_helper(self):
        outbox = Process.broadcast(IdMessage(1), IdMessage(2))
        assert outbox == {BROADCAST: [IdMessage(1), IdMessage(2)]}

    def test_done_flag(self):
        process = Trivial(ProcessContext(n=3, t=0, my_id=1))
        assert not process.done
        process.output_value = 5
        assert process.done

    def test_zero_output_counts_as_done(self):
        # `done` must test for None, not truthiness: 0 is a valid output.
        process = Trivial(ProcessContext(n=3, t=0, my_id=1))
        process.output_value = 0
        assert process.done


class TestProcessContext:
    def test_self_link_is_n(self):
        assert ProcessContext(n=9, t=2, my_id=5).self_link == 9

    def test_log_noop_without_trace(self):
        ctx = ProcessContext(n=3, t=0, my_id=1)
        ctx.log(1, "event", "detail")  # must not raise

    def test_log_forwards_to_trace(self):
        seen = []
        ctx = ProcessContext(
            n=3, t=0, my_id=1, trace=lambda r, e, d: seen.append((r, e, d))
        )
        ctx.log(4, "ranks", {"x": 1})
        assert seen == [(4, "ranks", {"x": 1})]

    def test_default_rng_is_deterministic(self):
        # A factory that forgets to derive an rng must still yield
        # reproducible runs: the default is a fixed-seed generator, and every
        # context gets its own instance (no shared stream between processes).
        a = ProcessContext(n=3, t=0, my_id=1)
        b = ProcessContext(n=3, t=0, my_id=2)
        assert a.rng is not b.rng
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]


class TestOrderedLinks:
    def test_sorted_input_kept_as_is(self):
        inbox = {1: (), 2: (), 5: ()}
        assert ordered_links(inbox) == [1, 2, 5]

    def test_unsorted_input_sorted(self):
        inbox = dict.fromkeys([4, 1, 3], ())
        assert ordered_links(inbox) == [1, 3, 4]

    def test_empty_and_singleton(self):
        assert ordered_links({}) == []
        assert ordered_links({7: ()}) == [7]


class TestIterInbox:
    def test_link_order_and_flattening(self):
        inbox = {
            3: (IdMessage(30),),
            1: (IdMessage(10), EchoMessage(11)),
        }
        flattened = list(iter_inbox(inbox))
        assert flattened == [
            (1, IdMessage(10)),
            (1, EchoMessage(11)),
            (3, IdMessage(30)),
        ]

    def test_empty(self):
        assert list(iter_inbox({})) == []
