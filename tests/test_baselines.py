"""Tests for the baseline algorithms (Okun crash, CHT, FloodSet, translated,
consensus renaming) and the interval-splitting core."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from helpers import assert_renaming_ok, standard_ids
from repro import run_protocol
from repro.adversary import CrashAdversary, make_adversary
from repro.baselines import (
    BitSplitRenaming,
    FloodSetRenaming,
    Interval,
    IntervalSplitter,
    OkunCrashRenaming,
    TranslatedByzantineRenaming,
    consensus_renaming_factory,
    interval_rounds,
)

CRASH_ATTACKS = ["silent", "conforming", "crash"]


class TestInterval:
    def test_children_partition(self):
        interval = Interval(1, 8)
        assert interval.left() == Interval(1, 4)
        assert interval.right() == Interval(5, 8)

    def test_odd_split_left_takes_ceiling(self):
        interval = Interval(1, 5)
        assert interval.left() == Interval(1, 3)
        assert interval.right() == Interval(4, 5)

    def test_singleton(self):
        assert Interval(3, 3).is_singleton
        assert not Interval(3, 4).is_singleton

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    @given(st.integers(1, 100), st.integers(0, 100))
    def test_children_cover_parent(self, lo, width):
        parent = Interval(lo, lo + width)
        if parent.is_singleton:
            return
        left, right = parent.left(), parent.right()
        assert left.lo == parent.lo and right.hi == parent.hi
        assert left.hi + 1 == right.lo
        assert left.size == (parent.size + 1) // 2


class TestIntervalRounds:
    @pytest.mark.parametrize("m,expected", [(1, 0), (2, 1), (3, 2), (8, 3), (9, 4)])
    def test_values(self, m, expected):
        assert interval_rounds(m) == expected


class TestIntervalSplitter:
    def test_consistent_views_assign_ranks(self):
        """With everyone seeing everyone, splitter i lands on leaf i+1."""
        ids = [30, 10, 20, 40]
        splitters = {i: IntervalSplitter(i, 4) for i in ids}
        for _ in range(interval_rounds(4) + 1):
            claims = {}
            for identifier, splitter in splitters.items():
                claims.setdefault(splitter.claim(), []).append(identifier)
            for identifier, splitter in splitters.items():
                splitter.resolve(claims[splitter.claim()])
        names = {identifier: s.decided for identifier, s in splitters.items()}
        assert names == {10: 1, 20: 2, 30: 3, 40: 4}

    def test_contested_singleton_rank1_stays(self):
        splitter = IntervalSplitter(5, 1)
        splitter.resolve([5, 9])
        assert splitter.decided is None
        assert splitter.claim() == (1, 1)

    def test_contested_singleton_rank2_probes(self):
        splitter = IntervalSplitter(9, 1)
        splitter.resolve([5, 9])
        assert splitter.decided is None
        assert splitter.claim() == (2, 2)

    def test_alone_singleton_decides(self):
        splitter = IntervalSplitter(9, 1)
        splitter.resolve([9])
        assert splitter.decided == 1

    def test_decided_is_sticky(self):
        splitter = IntervalSplitter(9, 1)
        splitter.resolve([9])
        splitter.resolve([5, 9])  # ghosts after deciding change nothing
        assert splitter.decided == 1

    @given(
        ids=st.lists(st.integers(1, 10**6), min_size=1, max_size=16, unique=True)
    )
    def test_consistent_views_strong_order_preserving(self, ids):
        """Property: crash-free splitting gives names = ranks (strong and
        order-preserving) within interval_rounds + 1 rounds."""
        n = len(ids)
        splitters = {identifier: IntervalSplitter(identifier, n) for identifier in ids}
        for _ in range(interval_rounds(n) + 1):
            claims = {}
            for identifier, splitter in splitters.items():
                claims.setdefault(splitter.claim(), []).append(identifier)
            for identifier, splitter in splitters.items():
                splitter.resolve(claims[splitter.claim()])
        for rank, identifier in enumerate(sorted(ids), start=1):
            assert splitters[identifier].decided == rank


class TestOkunCrash:
    @pytest.mark.parametrize("attack", CRASH_ATTACKS)
    @pytest.mark.parametrize("n,t", [(5, 1), (7, 2), (9, 3)])
    def test_strong_order_preserving(self, n, t, attack):
        for seed in (0, 1):
            result = run_protocol(
                OkunCrashRenaming,
                n=n,
                t=t,
                ids=standard_ids(n),
                adversary=make_adversary(attack),
                seed=seed,
            )
            assert_renaming_ok(
                result, n, context=f"okun n={n} t={t} attack={attack} seed={seed}"
            )

    def test_round_complexity(self):
        from repro import SystemParams

        result = run_protocol(
            OkunCrashRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("crash"),
            seed=0,
        )
        assert result.metrics.round_count == 2 + SystemParams(7, 2).voting_rounds

    def test_fault_free_names_are_ranks(self):
        result = run_protocol(OkunCrashRenaming, n=5, t=0, ids=[50, 10, 30, 20, 40], seed=0)
        assert result.new_names() == {10: 1, 20: 2, 30: 3, 40: 4, 50: 5}


class TestBitSplit:
    @pytest.mark.parametrize("attack", CRASH_ATTACKS)
    def test_uniqueness_and_namespace(self, attack):
        n, t = 8, 2
        for seed in (0, 1, 2):
            result = run_protocol(
                BitSplitRenaming,
                n=n,
                t=t,
                ids=standard_ids(n),
                adversary=make_adversary(attack),
                seed=seed,
            )
            # Order preservation is NOT promised under crashes; namespace may
            # overflow by at most the faults.
            assert_renaming_ok(
                result,
                n + t,
                require_order=False,
                context=f"cht attack={attack} seed={seed}",
            )

    def test_crash_free_strong_and_order_preserving(self):
        n = 8
        result = run_protocol(BitSplitRenaming, n=n, t=0, ids=standard_ids(n), seed=0)
        assert_renaming_ok(result, n)
        assert sorted(result.new_names().values()) == list(range(1, n + 1))

    def test_crash_free_decision_latency_logarithmic(self):
        n = 16
        result = run_protocol(
            BitSplitRenaming, n=n, t=0, ids=standard_ids(n), seed=0,
            collect_trace=True,
        )
        settled = [
            e.round_no for e in result.trace.select(event="settled")
        ]
        # Descend log2(n) levels, then one confirmation round alone at the
        # singleton.
        assert max(settled) == interval_rounds(n) + 1


class TestFloodSet:
    @pytest.mark.parametrize("attack", CRASH_ATTACKS)
    def test_strong_order_preserving(self, attack):
        n, t = 7, 2
        for seed in (0, 1):
            result = run_protocol(
                FloodSetRenaming,
                n=n,
                t=t,
                ids=standard_ids(n),
                adversary=make_adversary(attack),
                seed=seed,
            )
            assert_renaming_ok(result, n, context=f"floodset {attack} seed={seed}")

    def test_round_complexity_t_plus_one(self):
        result = run_protocol(
            FloodSetRenaming, n=7, t=2, ids=standard_ids(7),
            adversary=make_adversary("crash"), seed=0,
        )
        assert result.metrics.round_count == 3

    def test_mid_round_crash_sets_converge(self):
        """The FloodSet argument: even with partial crash deliveries every
        correct process ends with the same known set."""
        for seed in range(5):
            result = run_protocol(
                FloodSetRenaming,
                n=7,
                t=2,
                ids=standard_ids(7),
                adversary=CrashAdversary(horizon=3),
                seed=seed,
                collect_trace=True,
            )
            sets = {
                e.detail
                for e in result.trace.select(event="known")
                if e.process in result.correct
            }
            assert len(sets) == 1, f"seed={seed}: divergent known sets {sets}"


class TestTranslated:
    @pytest.mark.parametrize("attack", CRASH_ATTACKS)
    def test_uniqueness_and_doubled_namespace(self, attack):
        n, t = 7, 2
        for seed in (0, 1):
            result = run_protocol(
                TranslatedByzantineRenaming,
                n=n,
                t=t,
                ids=standard_ids(n),
                adversary=make_adversary(attack),
                seed=seed,
            )
            assert_renaming_ok(
                result,
                2 * n,
                require_order=False,
                context=f"translated {attack} seed={seed}",
            )

    def test_requires_n_over_3t(self):
        with pytest.raises(ValueError):
            run_protocol(
                TranslatedByzantineRenaming, n=6, t=2, ids=standard_ids(6), seed=0
            )

    def test_slower_than_alg1(self):
        """The cost-envelope point: echo-doubled split rounds exceed Alg. 1's
        3·log t + 7 at equal (n, t)."""
        from repro import OrderPreservingRenaming, SystemParams

        n, t = 7, 2
        translated = run_protocol(
            TranslatedByzantineRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary("silent"),
            seed=0,
            collect_trace=True,
        )
        latency = max(
            e.round_no for e in translated.trace.select(event="settled")
        )
        assert latency > SystemParams(n, t).total_rounds


class TestConsensusRenaming:
    @pytest.mark.parametrize("attack", ["silent", "noise", "crash"])
    def test_strong_order_preserving(self, attack):
        n, t = 7, 2
        for seed in (0, 1):
            ids = standard_ids(n)
            result = run_protocol(
                consensus_renaming_factory(n, ids, seed),
                n=n,
                t=t,
                ids=ids,
                adversary=make_adversary(attack),
                seed=seed,
            )
            assert_renaming_ok(result, n, context=f"consensus {attack} seed={seed}")

    def test_round_complexity_linear_in_t(self):
        for t in (1, 2, 3):
            n = 3 * t + 1
            ids = standard_ids(n)
            result = run_protocol(
                consensus_renaming_factory(n, ids, 0), n=n, t=t, ids=ids, seed=0
            )
            assert result.metrics.round_count == t + 1

    def test_message_size_exponential(self):
        """EIG messages blow up with t — the reason the paper avoids
        consensus. Peak message size at t=3 dwarfs t=1."""
        peaks = {}
        for t in (1, 3):
            n = 3 * t + 1
            ids = standard_ids(n)
            result = run_protocol(
                consensus_renaming_factory(n, ids, 0), n=n, t=t, ids=ids, seed=0
            )
            peaks[t] = result.metrics.peak_message_bits
        assert peaks[3] > 10 * peaks[1]
