"""Tests for the agreement substrates: Byzantine AA, EIG, Phase King."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import standard_ids
from repro import SystemParams, run_protocol
from repro.adversary import make_adversary
from repro.agreement import (
    ApproximateAgreement,
    EIGInteractiveConsistency,
    PhaseKingConsensus,
    initial_values_factory,
    make_identified_factory,
)


def aa_run(n, t, values_by_id, rounds, attack="silent", seed=0, ids=None):
    ids = ids or sorted(values_by_id)
    return run_protocol(
        initial_values_factory(values_by_id, rounds=rounds),
        n=n,
        t=t,
        ids=ids,
        adversary=make_adversary(attack) if t else None,
        seed=seed,
    )


class TestApproximateAgreement:
    def test_validity_range_containment(self):
        values = {10: Fraction(0), 20: Fraction(4), 30: Fraction(8),
                  40: Fraction(2), 50: Fraction(6), 60: Fraction(1), 70: Fraction(3)}
        result = aa_run(7, 2, values, rounds=5, attack="noise")
        correct_inputs = [values[result.ids[i]] for i in result.correct]
        for index in result.correct:
            assert min(correct_inputs) <= result.outputs[index] <= max(correct_inputs)

    def test_convergence_rate_at_least_sigma(self):
        params = SystemParams(7, 2)
        values = {identifier: Fraction(identifier) for identifier in standard_ids(7)}
        rounds = 6
        result = aa_run(7, 2, values, rounds=rounds, attack="noise", seed=3)
        outputs = [result.outputs[i] for i in result.correct]
        initial_spread = Fraction(60)
        final_spread = max(outputs) - min(outputs)
        assert final_spread <= initial_spread / params.sigma**rounds

    def test_fault_free_single_round_converges(self):
        values = {identifier: Fraction(identifier) for identifier in standard_ids(5)}
        result = aa_run(5, 0, values, rounds=1)
        outputs = {result.outputs[i] for i in result.correct}
        assert len(outputs) == 1

    def test_agreement_unaffected_by_silent_faults(self):
        values = {identifier: Fraction(identifier) for identifier in standard_ids(7)}
        result = aa_run(7, 2, values, rounds=6, attack="silent")
        outputs = [result.outputs[i] for i in result.correct]
        assert max(outputs) - min(outputs) < Fraction(1)

    def test_requires_n_over_2t(self):
        with pytest.raises(ValueError):
            run_protocol(
                initial_values_factory({1: Fraction(0), 2: Fraction(0),
                                        3: Fraction(0), 4: Fraction(0)}, rounds=2),
                n=4,
                t=2,
                ids=[1, 2, 3, 4],
                seed=0,
            )

    def test_rejects_zero_rounds(self):
        from repro.sim import ProcessContext

        with pytest.raises(ValueError):
            ApproximateAgreement(
                ProcessContext(n=5, t=1, my_id=1), initial=Fraction(0), rounds=0
            )

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.fractions(min_value=-50, max_value=50), min_size=7, max_size=7
        ),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_property_validity_and_contraction(self, values, seed):
        ids = standard_ids(7)
        values_by_id = dict(zip(ids, values))
        result = aa_run(7, 2, values_by_id, rounds=4, attack="rank-skew", seed=seed)
        correct_inputs = [values_by_id[result.ids[i]] for i in result.correct]
        lo, hi = min(correct_inputs), max(correct_inputs)
        outputs = [result.outputs[i] for i in result.correct]
        assert all(lo <= out <= hi for out in outputs)
        assert max(outputs) - min(outputs) <= (hi - lo) / 2**4 + Fraction(1, 10**9)


class TestEIG:
    def eig_factory(self, n, ids, seed, values_by_id):
        return make_identified_factory(
            n,
            ids,
            seed,
            lambda ctx, me, links: EIGInteractiveConsistency(
                ctx, me, links, value=values_by_id[ctx.my_id]
            ),
        )

    @pytest.mark.parametrize("attack", ["silent", "noise", "replay"])
    def test_interactive_consistency(self, attack):
        n, t, seed = 7, 2, 4
        ids = standard_ids(n)
        values = {identifier: identifier * 3 for identifier in ids}
        result = run_protocol(
            self.eig_factory(n, ids, seed, values),
            n=n,
            t=t,
            ids=ids,
            adversary=make_adversary(attack),
            seed=seed,
        )
        vectors = [result.outputs[i] for i in result.correct]
        # Agreement: all correct processes output the same vector.
        assert len(set(vectors)) == 1
        # Validity: correct slots carry the real values.
        vector = vectors[0]
        for index in result.correct:
            assert vector[index] == values[result.ids[index]]

    def test_round_complexity_t_plus_one(self):
        n, t, seed = 7, 2, 5
        ids = standard_ids(n)
        values = {identifier: 1 for identifier in ids}
        result = run_protocol(
            self.eig_factory(n, ids, seed, values),
            n=n,
            t=t,
            ids=ids,
            seed=seed,
        )
        assert result.metrics.round_count == t + 1

    def test_requires_n_over_3t(self):
        from repro.sim import ProcessContext

        with pytest.raises(ValueError):
            EIGInteractiveConsistency(
                ProcessContext(n=6, t=2, my_id=1), 0, {}, value=1
            )


class TestPhaseKing:
    def king_factory(self, n, ids, seed, values_by_id):
        return make_identified_factory(
            n,
            ids,
            seed,
            lambda ctx, me, links: PhaseKingConsensus(
                ctx, me, links, value=values_by_id[ctx.my_id]
            ),
        )

    @pytest.mark.parametrize("attack", ["silent", "noise"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agreement(self, attack, seed):
        n, t = 9, 2
        ids = standard_ids(n)
        values = {identifier: index % 2 for index, identifier in enumerate(ids)}
        result = run_protocol(
            self.king_factory(n, ids, seed, values),
            n=n,
            t=t,
            ids=ids,
            adversary=make_adversary(attack),
            seed=seed,
        )
        outputs = {result.outputs[i] for i in result.correct}
        assert len(outputs) == 1

    def test_validity_unanimous_input(self):
        n, t, seed = 9, 2, 7
        ids = standard_ids(n)
        values = {identifier: 1 for identifier in ids}
        result = run_protocol(
            self.king_factory(n, ids, seed, values),
            n=n,
            t=t,
            ids=ids,
            adversary=make_adversary("noise"),
            seed=seed,
        )
        assert all(result.outputs[i] == 1 for i in result.correct)

    def test_round_complexity(self):
        n, t, seed = 9, 2, 8
        ids = standard_ids(n)
        values = {identifier: 0 for identifier in ids}
        result = run_protocol(
            self.king_factory(n, ids, seed, values), n=n, t=t, ids=ids, seed=seed
        )
        assert result.metrics.round_count == 2 * (t + 1)

    def test_requires_n_over_4t(self):
        from repro.sim import ProcessContext

        with pytest.raises(ValueError):
            PhaseKingConsensus(ProcessContext(n=8, t=2, my_id=1), 0, {}, value=0)
