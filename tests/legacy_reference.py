"""Frozen pre-refactor implementations — the differential oracle.

Verbatim copies of the monolithic protocol classes as they stood before the
composition-layer refactor (hand-rolled round bookkeeping, subclass-override
consensus), kept here so ``test_compose.py`` can prove the composed
implementations are output- and trace-identical to them across the
seed × attack matrix. They import only building blocks whose behaviour the
refactor did not change (id selection, validation, approximation, the
combined EIG, the interval splitter).

Do not "improve" these copies: their value is that they are the old code.
"""

from __future__ import annotations

from dataclasses import replace
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.agreement.eig import EIGInteractiveConsistency
from repro.agreement.identity import make_identified_factory
from repro.baselines.splitting import ClaimMessage, IntervalSplitter, interval_rounds
from repro.core.approximation import approximate, nearest_int
from repro.core.id_selection import ID_SELECTION_STEPS, IdSelectionPhase
from repro.core.messages import (
    IdMessage,
    MultiEchoMessage,
    Rank,
    RanksMessage,
)
from repro.core.params import SystemParams
from repro.core.renaming import FLOAT_TOLERANCE, STABILITY_ROUNDS, RenamingOptions
from repro.core.fast import TWO_STEP_ROUNDS, TwoStepOptions
from repro.core.validation import is_sound_id, is_sound_vote, is_valid_ranks
from repro.sim.process import Inbox, Outbox, Process, ProcessContext


class LegacyOrderPreservingRenaming(Process):
    """Pre-refactor Algorithm 1 (monolithic round bookkeeping)."""

    def __init__(
        self, ctx: ProcessContext, options: RenamingOptions = RenamingOptions()
    ) -> None:
        super().__init__(ctx)
        self.options = options
        self.params = SystemParams(ctx.n, ctx.t)
        if options.enforce_resilience:
            self.params.require_byzantine_resilience()
        delta = self.params.delta if options.stretch else Fraction(1)
        self.delta: Rank = delta if options.exact_arithmetic else float(delta)
        self._tolerance = 0.0 if options.exact_arithmetic else FLOAT_TOLERANCE
        voting = options.voting_rounds
        self.voting_rounds = self.params.voting_rounds if voting is None else voting
        if self.voting_rounds < 1:
            raise ValueError(
                f"need at least one voting round, got {self.voting_rounds}"
            )
        self.total_rounds = ID_SELECTION_STEPS + self.voting_rounds
        self.selection = IdSelectionPhase(ctx.n, ctx.t, ctx.my_id)
        self.ranks: Dict[int, Rank] = {}
        self.accepted: Set[int] = set()
        self._stable_rounds = 0
        self.frozen_at: Optional[int] = None

    def send(self, round_no: int) -> Outbox:
        if round_no <= ID_SELECTION_STEPS:
            return self.broadcast(*self.selection.messages_for_step(round_no))
        return self.broadcast(RanksMessage.from_dict(self.ranks))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if round_no <= ID_SELECTION_STEPS:
            self.selection.deliver_step(round_no, inbox)
            if round_no == ID_SELECTION_STEPS:
                self._initialise_ranks()
            return
        self._voting_step(round_no, inbox)
        if round_no == self.total_rounds:
            self._decide()

    def _initialise_ranks(self) -> None:
        self.accepted = set(self.selection.accepted)
        if self.ctx.my_id not in self.accepted:
            raise RuntimeError(
                f"correct id {self.ctx.my_id} missing from accepted set "
                f"(n={self.ctx.n}, t={self.ctx.t})"
            )
        ordered = self.selection.sorted_accepted()
        self.ranks = {
            identifier: position * self.delta
            for position, identifier in enumerate(ordered, start=1)
        }
        self.ctx.log(ID_SELECTION_STEPS, "timely", frozenset(self.selection.timely))
        self.ctx.log(ID_SELECTION_STEPS, "accepted", ordered)
        self.ctx.log(ID_SELECTION_STEPS, "ranks", dict(self.ranks))

    def _voting_step(self, round_no: int, inbox: Inbox) -> None:
        votes: List[Mapping[int, Rank]] = []
        for link in sorted(inbox):
            vote = self._first_vote(inbox[link])
            if vote is None:
                continue
            if not self.options.validate_votes or is_valid_ranks(
                self.selection.timely, vote, self.delta, self._tolerance
            ):
                votes.append(vote)
        if self.frozen_at is not None:
            return
        if self.options.early_deciding:
            self._track_stability(round_no, votes)
            if self.frozen_at is not None:
                return
        self.ranks, self.accepted = approximate(
            self.ranks, self.accepted, votes, self.ctx.n, self.ctx.t
        )
        self.ctx.log(round_no, "ranks", dict(self.ranks))

    def _track_stability(self, round_no: int, votes) -> None:
        unanimous = len(votes) >= self.ctx.n - self.ctx.t and all(
            all(
                identifier in vote and vote[identifier] == rank
                for identifier, rank in self.ranks.items()
                if identifier in self.accepted
            )
            for vote in votes
        )
        if unanimous:
            self._stable_rounds += 1
        else:
            self._stable_rounds = 0
        if self._stable_rounds >= STABILITY_ROUNDS:
            self.frozen_at = round_no
            self.ctx.log(round_no, "early_frozen", dict(self.ranks))

    @staticmethod
    def _first_vote(messages) -> Optional[Dict[int, Rank]]:
        for message in messages:
            if isinstance(message, RanksMessage):
                vote = message.as_dict()
                return vote if is_sound_vote(vote) else None
        return None

    def _decide(self) -> None:
        if self.ctx.my_id not in self.ranks:
            raise RuntimeError(
                f"rank for own id {self.ctx.my_id} was discarded — "
                "cannot happen for a correct process when N > 3t"
            )
        self.output_value = nearest_int(self.ranks[self.ctx.my_id])
        self.ctx.log(self.total_rounds, "decided", self.output_value)


class LegacyConstantTimeRenaming(LegacyOrderPreservingRenaming):
    """Pre-refactor constant-time variant (truncated voting schedule)."""

    def __init__(
        self, ctx: ProcessContext, options: RenamingOptions = RenamingOptions()
    ) -> None:
        params = SystemParams(ctx.n, ctx.t)
        if options.enforce_resilience:
            params.require_constant_time_regime()
        options = replace(options, voting_rounds=params.constant_time_voting_rounds)
        super().__init__(ctx, options)


class LegacyTwoStepRenaming(Process):
    """Pre-refactor Algorithm 4 (monolithic)."""

    def __init__(
        self, ctx: ProcessContext, options: TwoStepOptions = TwoStepOptions()
    ) -> None:
        super().__init__(ctx)
        self.options = options
        self.params = SystemParams(ctx.n, ctx.t)
        if options.enforce_resilience:
            self.params.require_fast_regime()
        self.link_id: Dict[int, int] = {}
        self.timely: set = set()
        self.counter: Dict[int, int] = {}
        self.new_names: Dict[int, int] = {}

    def send(self, round_no: int) -> Outbox:
        if round_no == 1:
            return self.broadcast(IdMessage(self.ctx.my_id))
        return self.broadcast(MultiEchoMessage.from_ids(self.timely))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if round_no == 1:
            for link in sorted(inbox):
                for message in inbox[link]:
                    if isinstance(message, IdMessage) and is_sound_id(message.id):
                        self.link_id[link] = message.id
                        self.timely.add(message.id)
                        break
        else:
            for link in sorted(inbox):
                echo = self._first_multiecho(inbox[link])
                if echo is None or not self._is_valid(link, echo.ids):
                    continue
                for identifier in set(echo.ids):
                    self.counter[identifier] = self.counter.get(identifier, 0) + 1
            self.ctx.log(TWO_STEP_ROUNDS, "counters", dict(self.counter))
            self._choose_names()

    @staticmethod
    def _first_multiecho(messages) -> Optional[MultiEchoMessage]:
        for message in messages:
            if isinstance(message, MultiEchoMessage):
                return message
        return None

    def _is_valid(self, link: int, ids) -> bool:
        id_set = set(ids)
        return (
            link in self.link_id
            and len(id_set) <= self.ctx.n
            and all(is_sound_id(identifier) for identifier in id_set)
            and len(self.timely & id_set) >= self.ctx.n - self.ctx.t
        )

    def _choose_names(self) -> None:
        cap = self.ctx.n - self.ctx.t
        accumulated = 0
        for identifier in sorted(self.counter):
            offset = self.counter[identifier]
            if self.options.clamp_offsets:
                offset = min(offset, cap)
            accumulated += offset
            self.new_names[identifier] = accumulated
        if self.ctx.my_id not in self.new_names:
            raise RuntimeError(
                f"own id {self.ctx.my_id} received no echoes — impossible for "
                f"a correct process when N > 2t² + t"
            )
        self.output_value = self.new_names[self.ctx.my_id]
        self.ctx.log(TWO_STEP_ROUNDS, "decided", self.output_value)


class LegacyTranslatedByzantineRenaming(Process):
    """Pre-refactor translated baseline (private phase bookkeeping)."""

    def __init__(
        self, ctx: ProcessContext, extra_rounds: Optional[int] = None
    ) -> None:
        super().__init__(ctx)
        if ctx.n <= 3 * ctx.t:
            raise ValueError(
                f"translated renaming requires N > 3t (n={ctx.n}, t={ctx.t})"
            )
        self.namespace = 2 * ctx.n
        self.selection = IdSelectionPhase(ctx.n, ctx.t, ctx.my_id)
        self.splitter: Optional[IntervalSplitter] = None
        probe_budget = ctx.n if extra_rounds is None else extra_rounds
        self.horizon = (
            ID_SELECTION_STEPS + 2 * interval_rounds(self.namespace) + probe_budget
        )
        self._settled_round: Optional[int] = None

    def send(self, round_no: int) -> Outbox:
        if round_no <= ID_SELECTION_STEPS:
            return self.broadcast(*self.selection.messages_for_step(round_no))
        assert self.splitter is not None
        lo, hi = self.splitter.claim()
        return self.broadcast(ClaimMessage(self.ctx.my_id, lo, hi))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if round_no <= ID_SELECTION_STEPS:
            self.selection.deliver_step(round_no, inbox)
            if round_no == ID_SELECTION_STEPS:
                self.splitter = IntervalSplitter(self.ctx.my_id, self.namespace)
            return
        assert self.splitter is not None
        split_round = round_no - ID_SELECTION_STEPS
        rivals = self._rival_ids(inbox)
        already = self.splitter.decided
        if split_round % 2 == 0:
            self.splitter.resolve(rivals)
        if self.splitter.decided is not None and already is None:
            self._settled_round = round_no
            self.ctx.log(round_no, "settled", self.splitter.decided)
        if round_no == self.horizon:
            self._finish(round_no)

    def _rival_ids(self, inbox: Inbox):
        assert self.splitter is not None
        lo, hi = self.splitter.claim()
        accepted = self.selection.accepted
        rivals = []
        for link in sorted(inbox):
            for message in inbox[link]:
                if (
                    isinstance(message, ClaimMessage)
                    and message.lo == lo
                    and message.hi == hi
                    and message.id in accepted
                ):
                    rivals.append(message.id)
                    break
        return rivals

    def _finish(self, round_no: int) -> None:
        assert self.splitter is not None
        if self.splitter.decided is not None:
            self.output_value = self.splitter.decided
            return
        lo, _ = self.splitter.claim()
        self.output_value = lo
        self.ctx.log(round_no, "settled", lo)

    @property
    def settled_round(self) -> Optional[int]:
        return self._settled_round


class LegacyConsensusRenaming(EIGInteractiveConsistency):
    """Pre-refactor consensus baseline (subclass override on combined EIG)."""

    def __init__(
        self, ctx: ProcessContext, my_index: int, link_to_index: Dict[int, int]
    ) -> None:
        super().__init__(ctx, my_index, link_to_index, value=ctx.my_id)

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        super().deliver(round_no, inbox)
        if round_no == self.rounds:
            vector = self.output_value
            agreed = sorted({value for value in vector if value > 0})
            self.ctx.log(round_no, "agreed_ids", tuple(agreed))
            self.output_value = agreed.index(self.ctx.my_id) + 1


def legacy_consensus_factory(n: int, ids: Sequence[int], seed: int):
    """Identified-model factory for the legacy consensus baseline."""
    return make_identified_factory(
        n, ids, seed, lambda ctx, me, links: LegacyConsensusRenaming(ctx, me, links)
    )
