"""Every injected network fault surfaces as a *typed* client outcome.

The chaos proxy sits between :func:`run_session` and a real in-process
daemon; each test forces one fault kind with probability 1 and asserts
the client's :class:`SessionOutcome` is the matching typed status — never
an escaped exception, never a hang (every test runs under asyncio with
client timeouts far below the pytest timeout), and never a silent wrong
answer (a "completed" through a fault still passes client-side
re-validation by construction of run_session). The final test closes the
loop: tokened sessions driven through a faulty proxy with retries all
complete, and the journal shows no token ever executed twice.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.service.journal import SessionJournal, scan_session_journal
from repro.service.load import run_load, run_session, run_session_with_retry
from repro.service.messages import ERROR_CODES
from repro.service.proxy import ChaosProxy, ProxyFaults
from repro.service.server import RenamingService
from repro.sim.errors import ConfigurationError
from repro.workloads import make_ids

#: Outcomes a faulted transport may legitimately produce. Anything else —
#: "invalid", "violation", an exception — is a contract breach.
_TRANSPORT_OUTCOMES = {
    "refused", "timeout", "disconnected", "wire-error", "rejected",
    "completed", "busy",
}


@asynccontextmanager
async def proxied_service(faults, *, seed=0, journal=None, **kwargs):
    kwargs.setdefault("max_sessions", 8)
    kwargs.setdefault("session_deadline_s", 5.0)
    kwargs.setdefault("idle_timeout_s", 2.0)
    kwargs.setdefault("drain_grace_s", 1.0)
    svc = RenamingService(
        install_signal_handlers=False, journal=journal, **kwargs
    )
    await svc.start()
    runner = asyncio.create_task(svc.serve_forever())
    host, port = svc.bound_address
    proxy = ChaosProxy(host, port, faults=faults, seed=seed)
    await proxy.start()
    try:
        yield svc, proxy
    finally:
        await proxy.close()
        if not runner.done():
            svc.initiate_drain()
            svc.initiate_drain()
        await runner


async def _through_proxy(proxy, *, timeout_s=5.0, session_id="", seed=1):
    host, port = proxy.bound_address
    return await run_session(
        host, port, ids=make_ids("uniform", 6, seed=seed), seed=seed,
        timeout_s=timeout_s, session_id=session_id,
    )


class TestFaultConfig:
    def test_probabilities_are_validated(self):
        with pytest.raises(ConfigurationError):
            ProxyFaults(reset=1.5)
        with pytest.raises(ConfigurationError):
            ProxyFaults(direction="sideways")
        assert not ProxyFaults().any_enabled
        assert ProxyFaults(corrupt=0.1).any_enabled


class TestPassthrough:
    def test_no_faults_is_transparent(self):
        async def main():
            async with proxied_service(ProxyFaults()) as (svc, proxy):
                outcome = await _through_proxy(proxy)
                assert outcome.status == "completed", outcome
                assert proxy.stats.connections == 1
                assert proxy.stats.forwarded_bytes > 0
                assert svc.stats.completed == 1

        asyncio.run(main())

    def test_same_seed_same_fault_schedule(self):
        faults = ProxyFaults(reset=0.5, truncate=0.5)
        plans = []
        for _ in range(2):
            proxy = ChaosProxy("127.0.0.1", 1, faults=faults, seed=42)
            import random

            from repro.sim.rng import derive_seed

            plans.append([
                (plan.kind, plan.direction, plan.offset)
                for index in range(20)
                for plan in [proxy._draw_plan(
                    random.Random(derive_seed(42, "proxy-conn", index))
                )]
            ])
        assert plans[0] == plans[1]
        assert any(kind for kind, _, _ in plans[0])


class TestEachFaultIsTyped:
    def _assert_typed(self, faults, expected, *, timeout_s=5.0):
        async def main():
            async with proxied_service(faults) as (svc, proxy):
                outcome = await _through_proxy(proxy, timeout_s=timeout_s)
                assert outcome.status in expected, outcome
                assert outcome.status in _TRANSPORT_OUTCOMES
                if outcome.status == "rejected":
                    assert outcome.code in ERROR_CODES

        asyncio.run(main())

    def test_reset_down(self):
        self._assert_typed(
            ProxyFaults(reset=1.0, direction="down"),
            {"disconnected", "refused", "wire-error"},
        )

    def test_reset_up(self):
        self._assert_typed(
            ProxyFaults(reset=1.0, direction="up"),
            {"disconnected", "refused", "timeout", "wire-error"},
        )

    def test_truncate_down(self):
        # Part of a frame, then EOF: read_frame sees the mid-frame end.
        self._assert_typed(
            ProxyFaults(truncate=1.0, direction="down"), {"disconnected"}
        )

    def test_truncate_up(self):
        # The daemon saw a torn request; the client observes its half of
        # the conversation die (or the daemon's typed reject).
        self._assert_typed(
            ProxyFaults(truncate=1.0, direction="up"),
            {"disconnected", "timeout", "rejected"},
        )

    def test_corrupt_down(self):
        # A flipped byte in the response: frame-layer or codec-level
        # WireError, or (if the flip lands on a length header) a bounded
        # declared-length reject — typed either way. A flip may also land
        # on a don't-care byte and decode into an unexpected-but-valid
        # frame, which run_session reports as disconnected.
        self._assert_typed(
            ProxyFaults(corrupt=1.0, direction="down"),
            {"wire-error", "disconnected"},
        )

    def test_corrupt_up(self):
        self._assert_typed(
            ProxyFaults(corrupt=1.0, direction="up"),
            {"rejected", "disconnected", "timeout", "wire-error"},
        )

    def test_stall_becomes_a_client_timeout(self):
        self._assert_typed(
            ProxyFaults(stall=1.0, stall_s=30.0, direction="down"),
            {"timeout"},
            timeout_s=0.5,
        )

    def test_duplicate_is_typed_never_a_double_run(self):
        async def main():
            faults = ProxyFaults(duplicate=1.0, direction="up")
            async with proxied_service(faults) as (svc, proxy):
                outcome = await _through_proxy(proxy)
                # A duplicated request chunk replays frames the protocol
                # state machine already consumed — a typed protocol/config
                # reject or a clean completion if the duplicate landed on
                # a frame boundary the server tolerates (chunked ids).
                assert outcome.status in _TRANSPORT_OUTCOMES, outcome
                assert svc.stats.completed <= 1

        asyncio.run(main())


class TestRetriesThroughChaos:
    def test_tokened_retries_complete_and_never_double_run(self, tmp_path):
        journal = SessionJournal.open_or_create(tmp_path / "s.jsonl")
        faults = ProxyFaults(reset=0.2, truncate=0.2, corrupt=0.1)

        async def main():
            async with proxied_service(
                faults, seed=9, journal=journal
            ) as (svc, proxy):
                host, port = proxy.bound_address
                for index in range(8):
                    outcome = await run_session_with_retry(
                        host, port,
                        retries=20,
                        session_id=f"chaos-{index}",
                        ids=make_ids("uniform", 6, seed=index),
                        seed=index,
                        timeout_s=5.0,
                    )
                    assert outcome.status == "completed", (index, outcome)
                assert proxy.stats.resets + proxy.stats.truncations + \
                    proxy.stats.corruptions > 0, "chaos never fired"
                # Replays may answer retries, but each token ran at most
                # once on the engine.
                assert svc.stats.completed == 8

        asyncio.run(main())
        state = scan_session_journal(tmp_path / "s.jsonl")
        for index in range(8):
            record = state.sessions[f"chaos-{index}"]
            assert record.state == "completed", record
            # accepted may exceed 1 only if a crash had interrupted the
            # run; in-process the daemon never dies, so exactly one.
            assert record.accepted == 1, record

    def test_anonymous_load_through_chaos_stays_typed(self):
        faults = ProxyFaults(reset=0.15, truncate=0.15)

        async def main():
            async with proxied_service(faults, seed=3) as (svc, proxy):
                host, port = proxy.bound_address
                report = await run_load(
                    host, port, sessions=12, concurrency=4,
                    ids_per_session=5, timeout_s=5.0,
                )
                assert set(report.counts) <= _TRANSPORT_OUTCOMES
                assert report.counts.get("invalid", 0) == 0
                assert report.counts.get("violation", 0) == 0

        asyncio.run(main())

    def test_upstream_down_is_contained(self):
        async def main():
            proxy = ChaosProxy("127.0.0.1", 9)  # discard port: nobody home
            await proxy.start()
            try:
                host, port = proxy.bound_address
                outcome = await run_session(
                    host, port, ids=[3, 7, 11], timeout_s=2.0
                )
                assert outcome.status in ("disconnected", "refused"), outcome
                assert proxy.stats.upstream_failures == 1
            finally:
                await proxy.close()

        asyncio.run(main())
