"""Tests for the ASCII chart renderers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import bar_chart, decay_ratio, log_curve, step_curve


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart({"a": 10, "b": 5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        text = bar_chart({"long-label": 1, "x": 2})
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1})

    def test_all_zero_ok(self):
        text = bar_chart({"a": 0, "b": 0})
        assert "0" in text

    def test_unit_suffix(self):
        assert "7ms" in bar_chart({"a": 7}, unit="ms")


class TestLogCurve:
    def test_geometric_series_is_linear_staircase(self):
        series = {f"r{k}": 2.0 ** (8 - k) for k in range(8)}
        lines = log_curve(series, width=35).splitlines()
        lengths = [line.count("█") for line in lines]
        steps = [a - b for a, b in zip(lengths, lengths[1:])]
        # Uniform decrements up to integer/float-log quantisation (±2 chars).
        assert max(steps) - min(steps) <= 2
        assert all(step > 0 for step in steps)

    def test_zero_values_marked_exact(self):
        text = log_curve({"a": 1.0, "b": 0})
        assert "0 (exact)" in text

    def test_all_zero(self):
        text = log_curve({"a": 0, "b": 0})
        assert text.count("0 (exact)") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            log_curve({})

    @given(
        values=st.lists(
            st.floats(min_value=1e-9, max_value=1e9), min_size=1, max_size=10
        )
    )
    def test_never_crashes_on_positive_floats(self, values):
        series = {f"k{i}": v for i, v in enumerate(values)}
        text = log_curve(series)
        assert len(text.splitlines()) == len(values)


class TestStepCurve:
    def test_marker_positions_span(self):
        text = step_curve({"lo": 0.0, "hi": 1.0}, width=20, lo=0.0, hi=1.0)
        lines = text.splitlines()
        assert lines[0].index("o") < lines[1].index("o")

    def test_pinned_scale(self):
        text = step_curve({"a": 0.5}, width=21, lo=0.0, hi=1.0)
        # Marker at the middle column of the plotting area.
        plot = text.split("|")[1]
        assert plot[len(plot) // 2] == "o"

    def test_flat_series_ok(self):
        text = step_curve({"a": 3, "b": 3})
        assert text.count("o") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            step_curve({})


class TestDecayRatio:
    def test_geometric(self):
        assert decay_ratio([8, 4, 2, 1]) == [2.0, 2.0, 2.0]

    def test_reaching_zero(self):
        assert decay_ratio([4, 0]) == [math.inf]

    def test_short_series(self):
        assert decay_ratio([5]) == []
