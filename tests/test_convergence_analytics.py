"""Tests for the shared convergence analytics (and the replay view)."""

from __future__ import annotations

from fractions import Fraction

from helpers import standard_ids
from repro import OrderPreservingRenaming, SystemParams, run_protocol
from repro.adversary import make_adversary
from repro.analysis import (
    contraction_factors,
    load_run,
    dump_run,
    spread_for_ids,
    spread_series,
)


def traced_run(attack="divergence-valid", seed=0):
    return run_protocol(
        OrderPreservingRenaming,
        n=7,
        t=2,
        ids=standard_ids(7),
        adversary=make_adversary(attack),
        seed=seed,
        collect_trace=True,
    )


class TestSpreadSeries:
    def test_covers_selection_and_voting_rounds(self):
        result = traced_run()
        series = spread_series(result)
        params = SystemParams(7, 2)
        assert sorted(series) == list(range(4, params.total_rounds + 1))

    def test_monotone_under_valid_attack(self):
        series = spread_series(traced_run())
        ordered = [series[k] for k in sorted(series)]
        assert all(a >= b for a, b in zip(ordered, ordered[1:]))

    def test_untraced_returns_empty(self):
        result = run_protocol(
            OrderPreservingRenaming, n=7, t=2, ids=standard_ids(7), seed=0
        )
        assert spread_series(result) == {}

    def test_restricting_ids(self):
        result = traced_run()
        one_id = sorted(result.ids[i] for i in result.correct)[:1]
        series = spread_series(result, ids=one_id)
        full = spread_series(result)
        for round_no, spread in series.items():
            assert spread <= full[round_no]

    def test_works_on_archived_runs(self, tmp_path):
        result = traced_run()
        archive = load_run(dump_run(result, tmp_path / "r.json"))
        view = archive.as_result_view()
        assert spread_series(view) == spread_series(result)


class TestSpreadForIds:
    def test_basic(self):
        snapshots = [{1: Fraction(0), 2: Fraction(5)}, {1: Fraction(2), 2: Fraction(5)}]
        assert spread_for_ids(snapshots, [1, 2]) == Fraction(2)

    def test_missing_ids_skipped(self):
        snapshots = [{1: Fraction(0)}, {2: Fraction(9)}]
        assert spread_for_ids(snapshots, [1, 2]) is None


class TestContractionFactors:
    def test_from_dict(self):
        series = {4: Fraction(8), 5: Fraction(4), 6: Fraction(2)}
        assert contraction_factors(series) == [2.0, 2.0]

    def test_from_sequence_with_zero(self):
        assert contraction_factors([Fraction(4), Fraction(0)]) == [float("inf")]

    def test_measured_contraction_at_least_realized_sigma(self):
        result = traced_run()
        series = spread_series(result)
        params = SystemParams(7, 2)
        voting_only = {k: v for k, v in series.items() if k >= 5}
        factors = contraction_factors(voting_only)
        assert all(f >= params.realized_sigma - 1e-9 for f in factors)


class TestReplayView:
    def test_timeline_matches_live(self, tmp_path):
        from repro.analysis import render_timeline

        result = traced_run()
        view = load_run(dump_run(result, tmp_path / "r.json")).as_result_view()
        assert render_timeline(view) == render_timeline(result)

    def test_cli_replay(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "run.json"
        assert main([
            "inspect", "--algorithm", "alg1", "--n", "7", "--t", "2",
            "--attack", "divergence", "--save", str(target),
        ]) == 0
        capsys.readouterr()
        assert main(["replay", str(target)]) == 0
        out = capsys.readouterr().out
        assert "rank spread" in out
