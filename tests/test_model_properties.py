"""Property-based tests for the system-model injectors.

Two metamorphic anchors from the model contract (see
:mod:`repro.sim.model`):

* **Impersonation is append-only.** Forged frames are codec round-trips of
  this round's real traffic, appended to network-link buckets; stripping
  every appended frame reconstructs the classic round byte-for-byte, so an
  impersonation adversary can never perturb correct↔correct traffic.
* **Partial synchrony conserves frames.** Every transmission is delivered
  on time, delivered late, or counted as omitted — nothing is duplicated
  or silently lost — and the self-loop is exempt.

Plus the degenerate-model identity: ``impersonation:k=0`` and
``partial-synchrony:rate=0`` are bit-for-bit ``classic`` on every engine.
"""

from __future__ import annotations

from copy import deepcopy

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import assert_runs_identical, run_registered
from repro.sim import BROADCAST, ENGINES, SystemModel
from repro.wire import IdMessage, decode_message, encode_message

COMMON = dict(
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def outboxes_strategy(draw, n, allow_broadcast=False):
    """Random per-sender outboxes: {sender: {label: [messages]}}.

    Labels are explicit links 1..n (n is the self-loop); buckets are
    non-empty so "strip forgeries" has an exact inverse to compare against.
    """
    labels = list(range(1, n + 1)) + ([BROADCAST] if allow_broadcast else [])
    senders = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1, max_size=n, unique=True,
        )
    )
    outboxes = {}
    for sender in senders:
        chosen = draw(
            st.lists(st.sampled_from(labels), min_size=1, max_size=3, unique=True)
        )
        outboxes[sender] = {
            label: [
                IdMessage(draw(st.integers(min_value=0, max_value=10_000)))
                for _ in range(draw(st.integers(min_value=1, max_value=3)))
            ]
            for label in chosen
        }
    return outboxes


def count_frames(outboxes):
    return sum(
        len(bucket) for outbox in outboxes.values() for bucket in outbox.values()
    )


class TestImpersonationMetamorphic:
    @settings(**COMMON)
    @given(
        n=st.integers(min_value=2, max_value=7),
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=999),
        round_no=st.integers(min_value=0, max_value=30),
        data=st.data(),
    )
    def test_forgeries_append_only_and_roundtrip(self, n, k, seed, round_no, data):
        outboxes = data.draw(outboxes_strategy(n))
        snapshot = deepcopy(outboxes)
        model = SystemModel.impersonation(k, seed=seed)
        injector = model.build_injector(n=n)
        new_correct, new_byz = injector.perturb(round_no, outboxes, {})

        assert outboxes == snapshot, "inputs must never be mutated"
        assert new_byz == {}
        templates = [
            message
            for outbox in snapshot.values()
            for bucket in outbox.values()
            for message in bucket
        ]
        appended_total = 0
        stripped = {}
        for sender, outbox in new_correct.items():
            original = snapshot.get(sender, {})
            kept = {}
            for label, bucket in outbox.items():
                base = original.get(label, [])
                # Correct traffic intact, in order, ahead of any forgery.
                assert bucket[: len(base)] == base
                extra = bucket[len(base):]
                for frame in extra:
                    assert 1 <= label <= n - 1, "self-loop cannot be forged onto"
                    assert frame in templates, "forgeries replay real traffic"
                    assert decode_message(encode_message(frame)) == frame
                appended_total += len(extra)
                if base:
                    kept[label] = base
            # Nothing the sender actually sent is dropped.
            assert set(original) <= set(outbox)
            if sender in snapshot:
                stripped[sender] = kept
        # Metamorphic anchor: strip-forgeries reconstructs the classic round.
        assert stripped == snapshot
        assert injector.report.forged == appended_total
        assert appended_total <= k
        assert injector.report.as_dict().get("forged") == appended_total


class TestPartialSynchronyConservation:
    @settings(**COMMON)
    @given(
        n=st.integers(min_value=2, max_value=6),
        rate=st.floats(min_value=0.01, max_value=1.0),
        max_delay=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=999),
        data=st.data(),
    )
    def test_every_frame_delivered_or_omitted(self, n, rate, max_delay, seed, data):
        outboxes = data.draw(outboxes_strategy(n, allow_broadcast=True))
        snapshot = deepcopy(outboxes)
        # A broadcast frame becomes n per-link copies, each fated on its own.
        total_in = sum(
            len(bucket) * (n if label == BROADCAST else 1)
            for outbox in snapshot.values()
            for label, bucket in outbox.items()
        )
        model = SystemModel.partial_synchrony(rate, max_delay=max_delay, seed=seed)
        injector = model.build_injector(n=n)
        delivered = count_frames(injector.perturb(0, outboxes, {})[0])
        assert outboxes == snapshot, "inputs must never be mutated"
        for round_no in range(1, max_delay + 1):  # drain the delay buffer
            delivered += count_frames(injector.perturb(round_no, {}, {})[0])
        report = injector.report
        assert delivered + report.omitted == total_in
        assert report.delivered_late == report.delayed
        assert report.undelivered == 0

    def test_self_loop_is_exempt_even_at_full_loss(self):
        n = 4
        model = SystemModel.partial_synchrony(1.0, max_delay=0, seed=0)
        injector = model.build_injector(n=n)
        outboxes = {0: {n: [IdMessage(7)], 1: [IdMessage(8), IdMessage(9)]}}
        new_correct, _ = injector.perturb(0, outboxes, {})
        assert new_correct[0][n] == [IdMessage(7)]
        assert new_correct[0][1] == []
        assert injector.report.omitted == 2

    def test_broadcast_keeps_the_self_loop_copy(self):
        n = 3
        model = SystemModel.partial_synchrony(1.0, max_delay=0, seed=0)
        injector = model.build_injector(n=n)
        new_correct, _ = injector.perturb(0, {1: {BROADCAST: [IdMessage(5)]}}, {})
        # Links 1..n-1 dropped, the process-local copy survives.
        assert new_correct[1][n] == [IdMessage(5)]
        assert new_correct[1][1] == [] and new_correct[1][2] == []
        assert injector.report.omitted == n - 1


class TestDegenerateModelIdentity:
    @settings(deadline=None, max_examples=12,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=500),
        model=st.sampled_from([
            SystemModel.impersonation(0),
            SystemModel.partial_synchrony(0.0),
            SystemModel.classic(),
        ]),
        engine=st.sampled_from(sorted(ENGINES)),
    )
    def test_bit_identical_to_classic_on_every_engine(self, seed, model, engine):
        assert model.is_inert
        baseline = run_registered(
            "floodset", 5, 1, attack="silent", seed=seed, engine=engine
        )
        with_model = run_registered(
            "floodset", 5, 1, attack="silent", seed=seed, engine=engine,
            model=model,
        )
        assert with_model.model is None, "inert model must not install a hook"
        assert_runs_identical(
            baseline, with_model,
            f"floodset seed={seed} {model.describe()} on {engine}",
        )
