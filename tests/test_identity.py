"""Tests for the identified-model bridge."""

from __future__ import annotations

from repro.agreement import make_identified_factory
from repro.sim import FullMeshTopology, Process, ProcessContext


class Probe(Process):
    def __init__(self, ctx, my_index, link_to_index):
        super().__init__(ctx)
        self.my_index = my_index
        self.link_to_index = link_to_index

    def send(self, round_no):
        return {}

    def deliver(self, round_no, inbox):
        self.output_value = True


class TestMakeIdentifiedFactory:
    def test_indices_follow_id_order(self):
        ids = [50, 10, 30]
        factory = make_identified_factory(3, ids, seed=4, build=Probe)
        for index, identifier in enumerate(ids):
            probe = factory(ProcessContext(n=3, t=0, my_id=identifier))
            assert probe.my_index == index

    def test_link_map_matches_topology(self):
        n, seed = 5, 9
        ids = [100, 200, 300, 400, 500]
        topology = FullMeshTopology(n, seed=seed)
        factory = make_identified_factory(n, ids, seed=seed, build=Probe)
        me = 2
        probe = factory(ProcessContext(n=n, t=0, my_id=ids[me]))
        for link, peer in probe.link_to_index.items():
            assert topology.peer_of(me, link) == peer

    def test_self_loop_maps_to_self(self):
        ids = [1, 2, 3, 4]
        factory = make_identified_factory(4, ids, seed=0, build=Probe)
        probe = factory(ProcessContext(n=4, t=0, my_id=3))
        assert probe.link_to_index[4] == 2  # self-loop label n -> own index

    def test_every_index_covered(self):
        ids = [9, 8, 7, 6, 5, 4]
        factory = make_identified_factory(6, ids, seed=3, build=Probe)
        probe = factory(ProcessContext(n=6, t=0, my_id=7))
        assert sorted(probe.link_to_index.values()) == list(range(6))
