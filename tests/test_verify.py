"""Tests for the one-command reproduction verifier."""

from __future__ import annotations

from repro.analysis import ClaimResult, verify_reproduction
from repro.cli import main


class TestVerifyReproduction:
    def test_all_claims_pass(self):
        results = verify_reproduction()
        assert results, "no claims registered"
        failing = [claim for claim in results if not claim.passed]
        assert not failing, [claim.line() for claim in failing]

    def test_claim_lines_format(self):
        passed = ClaimResult("x", True, "d")
        failed = ClaimResult("y", False)
        assert passed.line() == "[PASS] x  (d)"
        assert failed.line() == "[FAIL] y"

    def test_covers_all_three_theorems(self):
        claims = " ".join(claim.claim for claim in verify_reproduction())
        for theorem in ("IV.10", "V.3", "VI.3"):
            assert theorem in claims

    def test_cli_verify(self, capsys):
        code = main(["verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "claims verified" in out
        assert "[FAIL]" not in out
