"""Tests for the early-deciding Okun variant (the actual [1] result)."""

from __future__ import annotations

from functools import partial

import pytest

from helpers import assert_renaming_ok, standard_ids
from repro import SystemParams, run_protocol
from repro.adversary import CrashAdversary, make_adversary
from repro.baselines import OkunCrashRenaming

EARLY = partial(OkunCrashRenaming, early_deciding=True)


def freeze_rounds(result):
    return [
        e.round_no
        for e in result.trace.select(event="early_frozen")
        if e.process in result.correct
    ]


class TestOkunEarlyDeciding:
    @pytest.mark.parametrize("attack", ["silent", "conforming", "crash"])
    def test_properties_hold(self, attack):
        for seed in (0, 1):
            result = run_protocol(
                EARLY,
                n=9,
                t=3,
                ids=standard_ids(9),
                adversary=make_adversary(attack),
                seed=seed,
            )
            assert_renaming_ok(result, 9, context=f"okun-early {attack}")

    def test_names_match_non_early(self):
        for attack in ("silent", "crash"):
            base = run_protocol(
                OkunCrashRenaming,
                n=9,
                t=3,
                ids=standard_ids(9),
                adversary=make_adversary(attack),
                seed=4,
            )
            early = run_protocol(
                EARLY,
                n=9,
                t=3,
                ids=standard_ids(9),
                adversary=make_adversary(attack),
                seed=4,
            )
            assert base.new_names() == early.new_names()

    def test_freezes_early_fault_free_like(self):
        result = run_protocol(
            EARLY,
            n=13,
            t=4,
            ids=standard_ids(13),
            adversary=make_adversary("silent"),
            seed=0,
            collect_trace=True,
        )
        frozen = freeze_rounds(result)
        deadline = 2 + SystemParams(13, 4).voting_rounds
        assert len(frozen) == len(result.correct)
        assert max(frozen) < deadline

    def test_crash_mid_run_still_freezes(self):
        result = run_protocol(
            EARLY,
            n=9,
            t=3,
            ids=standard_ids(9),
            byzantine=[0, 1, 2],
            adversary=CrashAdversary(crash_rounds={0: 1, 1: 3, 2: 4}),
            seed=2,
            collect_trace=True,
        )
        assert_renaming_ok(result, 9)
        frozen = freeze_rounds(result)
        assert len(frozen) == len(result.correct)
