"""Unit tests for messages and the bit-size accounting model."""

from __future__ import annotations

from fractions import Fraction

from repro.core.messages import (
    EchoMessage,
    IdMessage,
    MultiEchoMessage,
    RanksMessage,
    ReadyMessage,
)
from repro.sim import KIND_BITS, int_bits, total_bits
from repro.sim.messages import RANK_FRACTION_BITS


class TestIntBits:
    def test_degenerate_namespaces(self):
        assert int_bits(0) == 1
        assert int_bits(1) == 1

    def test_powers_of_two(self):
        assert int_bits(2) == 1
        assert int_bits(256) == 8
        assert int_bits(1024) == 10

    def test_non_powers_round_up(self):
        assert int_bits(3) == 2
        assert int_bits(1000) == 10


class TestMessageSizes:
    def test_control_messages_carry_one_id(self):
        for cls in (IdMessage, EchoMessage, ReadyMessage):
            assert cls(5).bit_size(id_bits=20) == KIND_BITS + 20

    def test_ranks_message_scales_with_entries(self):
        small = RanksMessage.from_dict({1: Fraction(1)})
        large = RanksMessage.from_dict({i: Fraction(i) for i in range(1, 9)})
        per_entry = large.bit_size(id_bits=20, rank_bits=4) - KIND_BITS
        assert per_entry == 8 * (20 + 4 + RANK_FRACTION_BITS)
        assert small.bit_size(id_bits=20, rank_bits=4) < large.bit_size(
            id_bits=20, rank_bits=4
        )

    def test_multiecho_scales_with_ids(self):
        message = MultiEchoMessage.from_ids([3, 1, 2])
        assert message.bit_size(id_bits=10) == KIND_BITS + 3 * 10

    def test_kind_property(self):
        assert IdMessage(1).kind == "IdMessage"

    def test_total_bits_sums(self):
        messages = [IdMessage(1), EchoMessage(2)]
        assert total_bits(messages, id_bits=10, rank_bits=4) == 2 * (KIND_BITS + 10)


class TestCanonicalForms:
    def test_ranks_entries_sorted_by_id(self):
        message = RanksMessage.from_dict({5: Fraction(2), 1: Fraction(9)})
        assert message.entries == ((1, Fraction(9)), (5, Fraction(2)))

    def test_ranks_roundtrip(self):
        ranks = {3: Fraction(7, 2), 9: Fraction(1, 3)}
        assert RanksMessage.from_dict(ranks).as_dict() == ranks

    def test_multiecho_sorted_and_deduplicated(self):
        message = MultiEchoMessage.from_ids([5, 1, 5, 3])
        assert message.ids == (1, 3, 5)

    def test_messages_hashable_and_equal(self):
        assert IdMessage(4) == IdMessage(4)
        assert hash(EchoMessage(4)) == hash(EchoMessage(4))
        assert IdMessage(4) != EchoMessage(4)
