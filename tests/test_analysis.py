"""Tests for the analysis layer: property checker, stats, tables, sweeps."""

from __future__ import annotations

import pytest

from helpers import standard_ids
from repro import OrderPreservingRenaming, run_protocol
from repro.analysis import (
    ALGORITHMS,
    SweepConfig,
    check_renaming,
    format_table,
    fraction_true,
    group_by,
    median_of,
    ratios,
    run_experiment,
    run_sweep,
    summarise,
)


def fake_result(names):
    """A minimal RunResult stand-in for the property checker."""

    class Stub:
        def __init__(self, mapping):
            self._mapping = mapping
            self.correct = tuple(range(len(mapping)))

        def new_names(self):
            return dict(self._mapping)

    return Stub(names)


class TestCheckRenaming:
    def test_ok_run(self):
        report = check_renaming(fake_result({10: 1, 20: 2, 30: 3}), namespace=3)
        assert report.ok
        assert str(report).startswith("OK")

    def test_validity_violation(self):
        report = check_renaming(fake_result({10: 0, 20: 5}), namespace=3)
        assert not report.validity
        assert any("validity" in v for v in report.violations)

    def test_uniqueness_violation(self):
        report = check_renaming(fake_result({10: 2, 20: 2}), namespace=3)
        assert not report.uniqueness
        assert "uniqueness" in str(report)

    def test_order_violation(self):
        report = check_renaming(fake_result({10: 3, 20: 1}), namespace=3)
        assert not report.order_preservation
        assert report.ok_without_order()  # still valid, unique, terminated

    def test_termination_violation(self):
        report = check_renaming(
            fake_result({10: 1}), namespace=3, expected_count=2
        )
        assert not report.termination

    def test_real_run(self):
        result = run_protocol(
            OrderPreservingRenaming, n=7, t=2, ids=standard_ids(7), seed=0
        )
        assert check_renaming(result, 8).ok


class TestStats:
    def test_summarise(self):
        summary = summarise([4, 1, 3, 2])
        assert summary.count == 4
        assert summary.minimum == 1 and summary.maximum == 4
        assert summary.mean == 2.5 and summary.median == 2.5

    def test_summarise_empty_raises(self):
        with pytest.raises(ValueError):
            summarise([])

    def test_median_odd(self):
        assert median_of([1, 2, 9]) == 2

    def test_fraction_true(self):
        assert fraction_true([True, False, True, True]) == 0.75
        assert fraction_true([]) == 0.0

    def test_ratios(self):
        assert ratios([2, 9], [4, 3]) == [0.5, 3.0]
        with pytest.raises(ValueError):
            ratios([1], [1, 2])


class TestTables:
    def test_alignment_and_rule(self):
        text = format_table(["name", "count"], [["alpha", 10], ["b", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].endswith("10")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestRunExperiment:
    def test_alg1_record(self):
        record = run_experiment("alg1", 7, 2, standard_ids(7), attack="noise", seed=1)
        assert record.rounds == 10
        assert record.report.ok
        assert record.max_name <= 8
        assert record.correct_messages > 0

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            run_experiment("nope", 7, 2, standard_ids(7))

    def test_meaningless_attack_pairing_rejected(self):
        """Sweeps filter unsupported pairings; direct callers must get a loud
        ConfigurationError naming the valid attacks, not a bogus run."""
        from repro.sim import ConfigurationError

        with pytest.raises(ConfigurationError, match="valid attacks"):
            run_experiment(
                "okun-crash", 7, 2, standard_ids(7), attack="id-forging"
            )
        with pytest.raises(ConfigurationError, match="alg4"):
            run_experiment("alg4", 11, 2, standard_ids(11), attack="divergence")

    def test_t_zero_runs_without_adversary(self):
        record = run_experiment("alg1", 5, 0, standard_ids(5))
        assert record.report.ok

    def test_all_registered_algorithms_run(self):
        sizes = {
            "alg1": (7, 2),
            "alg1-constant": (9, 2),
            "alg4": (11, 2),
            "okun-crash": (7, 2),
            "cht": (7, 2),
            "floodset": (7, 2),
            "translated": (7, 2),
            "consensus": (7, 2),
        }
        assert set(sizes) == set(ALGORITHMS)
        for algorithm, (n, t) in sizes.items():
            record = run_experiment(algorithm, n, t, standard_ids(n), attack="silent")
            assert record.report.ok_without_order(), algorithm


class TestSweep:
    def test_configurations_respect_regimes(self):
        config = SweepConfig(
            algorithms=["alg4"], sizes=[(11, 2), (9, 2)], attacks=["silent"]
        )
        configs = list(config.configurations())
        # (9, 2) is outside N > 2t^2 + t and must be skipped.
        assert all(n == 11 for _, n, _, _, _ in configs)

    def test_configurations_respect_attack_support(self):
        config = SweepConfig(
            algorithms=["okun-crash"],
            sizes=[(7, 2)],
            attacks=["silent", "id-forging"],
        )
        attacks = {attack for *_, attack, _ in config.configurations()}
        assert attacks == {"silent"}

    def test_run_sweep_and_group(self):
        config = SweepConfig(
            algorithms=["alg1"], sizes=[(7, 2)], attacks=["silent"], seeds=[0, 1]
        )
        records = run_sweep(config)
        assert len(records) == 2
        groups = group_by(records, "algorithm", "n")
        assert list(groups) == [("alg1", 7)]
        assert all(record.report.ok for record in records)
