"""Tests for the run-timeline inspector."""

from __future__ import annotations

from helpers import standard_ids
from repro import OrderPreservingRenaming, run_protocol
from repro.adversary import make_adversary
from repro.analysis import render_timeline, summarize_views


def traced_run(attack="divergence", n=7, t=2, seed=2):
    return run_protocol(
        OrderPreservingRenaming,
        n=n,
        t=t,
        ids=standard_ids(n),
        adversary=make_adversary(attack),
        seed=seed,
        collect_trace=True,
    )


class TestRenderTimeline:
    def test_contains_every_round(self):
        result = traced_run()
        text = render_timeline(result)
        for record in result.metrics.rounds:
            assert f"\n{record.round_no:>5}  " in text or text.splitlines()

    def test_shows_header_and_outputs(self):
        result = traced_run()
        text = render_timeline(result)
        assert f"n={result.n} t={result.t}" in text
        for original, name in result.outputs_by_id().items():
            assert str(original) in text
            assert str(name) in text

    def test_notes_decisions(self):
        result = traced_run()
        assert "decided" in render_timeline(result)

    def test_rank_spread_column_monotone(self):
        """The spread values embedded in the timeline shrink over the voting
        phase — the contraction is visible in the rendering itself."""
        result = traced_run()
        spreads = []
        for line in render_timeline(result).splitlines():
            parts = line.split()
            if parts and parts[0].isdigit() and len(parts) >= 5:
                cell = parts[4]
                if cell != "-":
                    spreads.append(float(cell))
        assert len(spreads) >= 3
        assert spreads == sorted(spreads, reverse=True)

    def test_untraced_run_still_renders(self):
        result = run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("silent"),
            seed=0,
        )
        text = render_timeline(result)
        assert "round" in text

    def test_early_freeze_noted(self):
        from functools import partial

        from repro import RenamingOptions

        result = run_protocol(
            partial(
                OrderPreservingRenaming,
                options=RenamingOptions(early_deciding=True),
            ),
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=make_adversary("silent"),
            seed=0,
            collect_trace=True,
        )
        assert "froze early" in render_timeline(result)


class TestSummarizeViews:
    def test_divergence_attack_produces_two_views(self):
        result = traced_run("divergence")
        text = summarize_views(result)
        assert text is not None
        # Two distinct accepted-set rows (plus header and rule).
        assert len(text.splitlines()) == 4

    def test_benign_run_single_view(self):
        result = traced_run("silent")
        text = summarize_views(result)
        assert len(text.splitlines()) == 3

    def test_untraced_returns_none(self):
        result = run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            seed=0,
        )
        assert summarize_views(result) is None
