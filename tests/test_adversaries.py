"""Unit tests for the attack-construction machinery itself."""

from __future__ import annotations

import pytest

from helpers import standard_ids
from repro import OrderPreservingRenaming, run_protocol
from repro.adversary import (
    ConformingAdversary,
    CrashAdversary,
    MuteAfterAdversary,
    adversary_names,
    forge_fake_ids,
    make_adversary,
    plan_announcements,
)
from repro.adversary.registry import ALG1_ATTACKS, ALG4_ATTACKS, register


class TestForgeFakeIds:
    def test_between_fills_gaps(self):
        fakes = forge_fake_ids([10, 13, 20], 3, "between")
        assert len(fakes) == 3
        assert all(10 < fake < 20 for fake in fakes)

    def test_between_falls_back_to_above(self):
        fakes = forge_fake_ids([1, 2, 3], 2, "between")
        assert fakes == [4, 5]

    def test_below_prefers_below(self):
        fakes = forge_fake_ids([10, 20], 3, "below")
        assert sorted(fakes) == [7, 8, 9]

    def test_below_overflow_goes_above(self):
        fakes = forge_fake_ids([2, 3], 4, "below")
        assert 1 in fakes  # only one slot available below
        assert all(fake >= 1 for fake in fakes)
        assert len(set(fakes)) == 4

    def test_above(self):
        assert forge_fake_ids([5, 9], 2, "above") == [10, 11]

    def test_never_collides_with_correct_ids(self):
        correct = [3, 4, 7, 100]
        fakes = forge_fake_ids(correct, 10, "between")
        assert not set(fakes) & set(correct)
        assert len(set(fakes)) == 10

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            forge_fake_ids([1], 1, "sideways")


class TestPlanAnnouncements:
    def test_each_fake_gets_quota_distinct_peers(self):
        byzantine = [0, 1]
        correct = [2, 3, 4, 5, 6]
        assignment = plan_announcements([100, 101, 102], byzantine, correct, quota=3)
        for fake in (100, 101, 102):
            peers = [peer for (slot, peer), f in assignment.items() if f == fake]
            assert len(peers) == 3
            assert len(set(peers)) == 3

    def test_pairs_disjoint(self):
        assignment = plan_announcements([100, 101, 102], [0, 1], [2, 3, 4, 5, 6], 3)
        assert len(assignment) == 9  # each (slot, peer) pair used at most once

    def test_slot_capacity_respected(self):
        assignment = plan_announcements([100, 101, 102], [0, 1], [2, 3, 4, 5, 6], 3)
        for peer in (2, 3, 4, 5, 6):
            slots = [slot for (slot, p) in assignment if p == peer]
            assert len(slots) == len(set(slots))

    def test_over_budget_raises(self):
        with pytest.raises(RuntimeError):
            plan_announcements(list(range(100, 110)), [0], [1, 2, 3], quota=3)


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in adversary_names():
            adversary = make_adversary(name)
            assert adversary is not None

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(KeyError, match="silent"):
            make_adversary("nonexistent")

    def test_attack_lists_are_registered(self):
        known = set(adversary_names())
        assert set(ALG1_ATTACKS) <= known
        assert set(ALG4_ATTACKS) <= known

    def test_register_custom(self):
        from repro.sim import NullAdversary

        register("test-custom", NullAdversary)
        assert isinstance(make_adversary("test-custom"), NullAdversary)


class TestConformingAdversary:
    def test_matches_fault_free_names(self):
        """Byzantine-in-name-only slots must leave outcomes identical to a
        fault-free run restricted to the same processes... in fact with
        conforming slots all N processes behave correctly, so the correct
        processes' names equal their ranks among all N ids."""
        n, t = 7, 2
        ids = standard_ids(n)
        result = run_protocol(
            OrderPreservingRenaming,
            n=n,
            t=t,
            ids=ids,
            adversary=ConformingAdversary(),
            seed=0,
        )
        expected = {
            identifier: sorted(ids).index(identifier) + 1
            for identifier in result.outputs_by_id()
        }
        assert result.new_names() == expected


class TestCrashAdversary:
    def test_fixed_schedule_respected(self):
        adversary = CrashAdversary(crash_rounds={1: 3})
        run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            byzantine=[1, 2],
            adversary=adversary,
            seed=0,
        )
        assert adversary.crash_round_of(1) == 3

    def test_random_schedule_within_horizon(self):
        adversary = CrashAdversary(horizon=5)
        run_protocol(
            OrderPreservingRenaming,
            n=7,
            t=2,
            ids=standard_ids(7),
            adversary=adversary,
            seed=1,
        )
        for slot in adversary.ctx.byzantine:
            assert 1 <= adversary.crash_round_of(slot) <= 5


class TestMuteAfterAdversary:
    def test_silent_after_cutoff(self):
        """A slot muted after round 1 contributes its id but never echoes:
        its id still spreads via correct processes."""
        n, t = 7, 2
        result = run_protocol(
            OrderPreservingRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=MuteAfterAdversary(last_active_round=1),
            seed=0,
            collect_trace=True,
        )
        names = result.new_names()
        assert len(names) == n - t
