"""Integration tests for the synchronous round executor."""

from __future__ import annotations

import pytest

from repro.core.messages import IdMessage
from repro.sim import (
    ConfigurationError,
    Inbox,
    NullAdversary,
    Outbox,
    Process,
    RoundLimitExceeded,
    run_protocol,
)


class EchoOnce(Process):
    """Broadcasts its id once and outputs the multiset of ids it received."""

    def send(self, round_no: int) -> Outbox:
        return self.broadcast(IdMessage(self.ctx.my_id))

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        received = []
        for link in sorted(inbox):
            for message in inbox[link]:
                if isinstance(message, IdMessage):
                    received.append(message.id)
        self.output_value = tuple(sorted(received))


class Countdown(Process):
    """Outputs after a fixed number of rounds; sends nothing."""

    def __init__(self, ctx, rounds: int = 3) -> None:
        super().__init__(ctx)
        self.rounds = rounds

    def send(self, round_no: int) -> Outbox:
        return {}

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        if round_no == self.rounds:
            self.output_value = round_no


class Forever(Process):
    """Never decides — used to exercise the round limit."""

    def send(self, round_no: int) -> Outbox:
        return {}

    def deliver(self, round_no: int, inbox: Inbox) -> None:
        pass


class TestRunProtocol:
    def test_all_to_all_exchange_fault_free(self):
        result = run_protocol(EchoOnce, n=4, t=0, ids=[5, 6, 7, 8], seed=0)
        for index in range(4):
            assert result.outputs[index] == (5, 6, 7, 8)

    def test_silent_faulty_slots_missing_from_exchange(self):
        result = run_protocol(
            EchoOnce, n=4, t=1, ids=[5, 6, 7, 8], byzantine=[2], seed=0
        )
        for index in result.correct:
            assert result.outputs[index] == (5, 6, 8)

    def test_rounds_counted(self):
        result = run_protocol(Countdown, n=3, t=0, ids=[1, 2, 3], seed=0)
        assert result.metrics.round_count == 3

    def test_round_limit_raises(self):
        with pytest.raises(RoundLimitExceeded):
            run_protocol(Forever, n=3, t=0, ids=[1, 2, 3], seed=0, max_rounds=5)

    def test_byzantine_slot_selection_pinned(self):
        result = run_protocol(
            EchoOnce, n=5, t=2, ids=[1, 2, 3, 4, 5], byzantine=[0, 3], seed=0
        )
        assert result.byzantine == (0, 3)
        assert result.correct == (1, 2, 4)

    def test_byzantine_slot_selection_seeded(self):
        first = run_protocol(EchoOnce, n=6, t=2, ids=list(range(1, 7)), seed=11)
        second = run_protocol(EchoOnce, n=6, t=2, ids=list(range(1, 7)), seed=11)
        assert first.byzantine == second.byzantine

    def test_outputs_by_id(self):
        result = run_protocol(Countdown, n=3, t=0, ids=[30, 10, 20], seed=0)
        assert result.outputs_by_id() == {30: 3, 10: 3, 20: 3}

    def test_new_names_requires_ints(self):
        result = run_protocol(EchoOnce, n=3, t=0, ids=[1, 2, 3], seed=0)
        with pytest.raises(TypeError):
            result.new_names()

    def test_new_names_rejects_bools(self):
        """bool passes isinstance(..., int); a protocol that buggily outputs
        True must not be silently treated as name 1."""

        class Affirmer(Process):
            def send(self, round_no):
                return {}

            def deliver(self, round_no, inbox):
                self.output_value = True

        result = run_protocol(Affirmer, n=3, t=0, ids=[1, 2, 3], seed=0)
        with pytest.raises(TypeError, match="not an int name"):
            result.new_names()

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            run_protocol(EchoOnce, n=3, t=0, ids=[1, 1, 2], seed=0)

    def test_wrong_id_count_rejected(self):
        with pytest.raises(ConfigurationError):
            run_protocol(EchoOnce, n=3, t=0, ids=[1, 2], seed=0)

    def test_nonpositive_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            run_protocol(EchoOnce, n=3, t=0, ids=[0, 1, 2], seed=0)

    def test_t_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            run_protocol(EchoOnce, n=3, t=3, ids=[1, 2, 3], seed=0)
        with pytest.raises(ConfigurationError):
            run_protocol(EchoOnce, n=3, t=-1, ids=[1, 2, 3], seed=0)

    def test_too_many_pinned_fault_slots_rejected(self):
        with pytest.raises(ValueError):
            run_protocol(
                EchoOnce, n=4, t=1, ids=[1, 2, 3, 4], byzantine=[0, 1], seed=0
            )

    def test_metrics_count_broadcasts_as_n_messages(self):
        result = run_protocol(EchoOnce, n=4, t=0, ids=[1, 2, 3, 4], seed=0)
        # 4 processes broadcast once; each broadcast = 4 link transmissions.
        assert result.metrics.correct_messages == 16

    def test_trace_collection(self):
        class Tracer(Countdown):
            def deliver(self, round_no, inbox):
                self.ctx.log(round_no, "tick", round_no)
                super().deliver(round_no, inbox)

        result = run_protocol(
            Tracer, n=2, t=0, ids=[1, 2], seed=0, collect_trace=True
        )
        ticks = result.trace.select(event="tick")
        assert len(ticks) == 6  # 2 processes x 3 rounds
        assert result.trace.rounds() == [1, 2, 3]

    def test_trace_disabled_by_default(self):
        result = run_protocol(Countdown, n=2, t=0, ids=[1, 2], seed=0)
        assert result.trace is None

    def test_adversary_cannot_impersonate_correct_slot(self):
        class Impersonator(NullAdversary):
            def send(self, round_no, correct_outboxes):
                victim = self.ctx.correct[0]
                return {victim: {1: [IdMessage(999)]}}

        with pytest.raises(ConfigurationError):
            run_protocol(
                EchoOnce,
                n=4,
                t=1,
                ids=[1, 2, 3, 4],
                adversary=Impersonator(),
                seed=0,
            )

    def test_observe_skipped_when_unwanted(self):
        """Adversaries that declare wants_observations=False never receive
        observe() calls — the runner skips building their inbox view."""
        calls = []

        class Spy(NullAdversary):
            wants_observations = True  # NullAdversary opts out; re-enable

            def observe(self, round_no, inboxes):
                calls.append((round_no, dict(inboxes)))

        watching = Spy()
        run_protocol(
            EchoOnce, n=4, t=1, ids=[1, 2, 3, 4], adversary=watching, seed=0
        )
        assert calls  # wants_observations defaults to True
        assert all(inboxes for _, inboxes in calls)

        calls.clear()

        class Blind(Spy):
            wants_observations = False

        run_protocol(
            EchoOnce, n=4, t=1, ids=[1, 2, 3, 4], adversary=Blind(), seed=0
        )
        assert calls == []

    def test_null_adversary_declines_observations(self):
        assert NullAdversary.wants_observations is False

    def test_runs_reproducible(self):
        first = run_protocol(EchoOnce, n=5, t=1, ids=list(range(1, 6)), seed=3)
        second = run_protocol(EchoOnce, n=5, t=1, ids=list(range(1, 6)), seed=3)
        assert first.outputs == second.outputs
        assert first.byzantine == second.byzantine

    def test_each_outbox_expanded_exactly_once_per_round(self, monkeypatch):
        """The reference engine must not re-expand outboxes for metrics
        accounting — delivery and traffic counting share one expansion pass.
        (The batched engine bypasses ``expand_outbox`` entirely; its traffic
        accounting is proven equal in tests/test_engine_differential.py.)"""
        from repro.sim.network import SynchronousNetwork

        calls = []
        original = SynchronousNetwork.expand_outbox

        def counting(self, sender, outbox):
            calls.append(sender)
            return original(self, sender, outbox)

        monkeypatch.setattr(SynchronousNetwork, "expand_outbox", counting)
        result = run_protocol(
            EchoOnce, n=4, t=1, ids=[1, 2, 3, 4], seed=0, engine="reference"
        )
        # Every correct process is pending in every round; the null adversary
        # sends nothing. One expansion per (correct sender, round), no more.
        expected = result.metrics.round_count * len(result.correct)
        assert len(calls) == expected
        # And the metrics still see the full traffic despite single expansion.
        assert result.metrics.correct_messages > 0
