"""Unit tests for the link-labelled full-mesh topology."""

from __future__ import annotations

import pytest

from repro.sim import ConfigurationError, FullMeshTopology


class TestFullMeshTopology:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FullMeshTopology(0)

    def test_self_loop_is_label_n(self):
        topology = FullMeshTopology(5, seed=1)
        for process in range(5):
            assert topology.peer_of(process, topology.self_link) == process

    def test_labels_cover_one_to_n(self):
        topology = FullMeshTopology(6, seed=2)
        assert list(topology.labels()) == [1, 2, 3, 4, 5, 6]

    def test_each_label_maps_to_distinct_peer(self):
        topology = FullMeshTopology(7, seed=3)
        for process in range(7):
            peers = [topology.peer_of(process, label) for label in topology.labels()]
            assert sorted(peers) == list(range(7))

    def test_label_of_inverts_peer_of(self):
        topology = FullMeshTopology(8, seed=4)
        for process in range(8):
            for label in topology.labels():
                peer = topology.peer_of(process, label)
                if peer != process:
                    assert topology.label_of(process, peer) == label

    def test_labelling_deterministic_in_seed(self):
        first = FullMeshTopology(9, seed=5)
        second = FullMeshTopology(9, seed=5)
        for process in range(9):
            for label in first.labels():
                assert first.peer_of(process, label) == second.peer_of(process, label)

    def test_labelling_varies_with_seed(self):
        first = FullMeshTopology(9, seed=5)
        second = FullMeshTopology(9, seed=6)
        differs = any(
            first.peer_of(p, label) != second.peer_of(p, label)
            for p in range(9)
            for label in first.labels()
        )
        assert differs

    def test_labels_are_private_per_process(self):
        # The label p uses for q generally differs from the label q uses for
        # p — labels carry no global identity. Check it differs somewhere.
        topology = FullMeshTopology(10, seed=7)
        asymmetric = any(
            topology.label_of(p, q) != topology.label_of(q, p)
            for p in range(10)
            for q in range(10)
            if p != q
        )
        assert asymmetric

    def test_invalid_label_raises(self):
        topology = FullMeshTopology(4, seed=0)
        with pytest.raises(ConfigurationError):
            topology.peer_of(0, 0)
        with pytest.raises(ConfigurationError):
            topology.peer_of(0, 5)

    def test_missing_link_raises(self):
        topology = FullMeshTopology(4, seed=0)
        with pytest.raises(ConfigurationError):
            topology.label_of(0, 99)

    def test_single_process_topology(self):
        topology = FullMeshTopology(1, seed=0)
        assert topology.self_link == 1
        assert topology.peer_of(0, 1) == 0
