"""Tests for the parallel sweep executor: determinism, caching, pickling."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.analysis import (
    ExperimentSummary,
    ResultCache,
    RunTask,
    SweepConfig,
    SweepExecutor,
    parallel_map,
    run_sweep,
)
from repro.analysis.executor import execute_task, resolve_workers
from repro.analysis.export import export_csv
from repro.sim import FaultPlan, SystemModel

# 3 algorithms x 2 sizes x 2 attacks x 2 seeds = 24 configurations; the
# crash baselines and alg1 all accept "silent" and "crash" and support
# these sizes, so nothing is filtered out of the grid.
GRID = SweepConfig(
    algorithms=["alg1", "okun-crash", "floodset"],
    sizes=[(4, 1), (5, 1)],
    attacks=["silent", "crash"],
    seeds=(0, 1),
)


def csv_bytes(records, tmp_path, name):
    path = export_csv(records, tmp_path / name)
    return path.read_bytes()


class TestResolveWorkers:
    def test_explicit_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    def test_default_is_positive(self):
        assert resolve_workers(None) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)


class TestDeterminism:
    def test_parallel_matches_serial_byte_identical(self, tmp_path):
        """The acceptance bar: workers=4 produces the same records in the
        same order as workers=1, down to identical CSV bytes."""
        serial = run_sweep(GRID, workers=1)
        parallel = run_sweep(GRID, workers=4)
        assert len(serial) == len(parallel) == 24
        assert csv_bytes(serial, tmp_path, "serial.csv") == csv_bytes(
            parallel, tmp_path, "parallel.csv"
        )

    def test_order_follows_configuration_index(self):
        records = run_sweep(GRID, workers=2)
        expected = list(GRID.configurations())
        observed = [
            (r.algorithm, r.n, r.t, r.attack, r.seed) for r in records
        ]
        assert observed == expected

    def test_parallel_map_preserves_order(self):
        assert parallel_map(divmod, [(9, 4), (7, 2), (5, 3)], workers=2) == [
            (2, 1),
            (3, 1),
            (1, 2),
        ]


class TestResultCache:
    def test_warm_cache_executes_nothing(self, tmp_path):
        """Second run of the same grid restores every row from disk."""
        executed = []
        executor = SweepExecutor(
            workers=2, cache=tmp_path / "cache", run_hook=executed.append
        )
        first = executor.run(GRID)
        assert len(executed) == 24
        assert executor.stats.executed == 24
        assert executor.stats.from_cache == 0

        warm = SweepExecutor(
            workers=2, cache=tmp_path / "cache", run_hook=executed.append
        )
        second = warm.run(GRID)
        assert len(executed) == 24  # no new runs
        assert warm.stats.executed == 0
        assert warm.stats.from_cache == 24
        assert all(r.cached for r in second)
        assert [r.to_dict() for r in first] == [r.to_dict() for r in second]

    def test_changed_seed_misses_only_new_configs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepExecutor(workers=1, cache=cache).run(GRID)

        wider = SweepConfig(
            algorithms=GRID.algorithms,
            sizes=GRID.sizes,
            attacks=GRID.attacks,
            seeds=(0, 1, 2),
        )
        executor = SweepExecutor(workers=1, cache=cache)
        records = executor.run(wider)
        assert len(records) == 36
        assert executor.stats.from_cache == 24
        assert executor.stats.executed == 12
        assert all(r.seed == 2 for r in records if not r.cached)

    def test_changed_model_misses_the_whole_grid(self, tmp_path):
        """The model axis is part of the key: a grid re-run under a
        different model shares nothing with the classic cache."""
        cache = ResultCache(tmp_path / "cache")
        grid = SweepConfig(
            algorithms=["floodset"], sizes=[(5, 1)], seeds=(0, 1),
        )
        SweepExecutor(workers=1, cache=cache).run(grid)

        lossy = SweepConfig(
            algorithms=["floodset"], sizes=[(5, 1)], seeds=(0, 1),
            model=SystemModel.partial_synchrony(0.1),
        )
        executor = SweepExecutor(workers=1, cache=cache)
        executor.run(lossy)
        assert executor.stats.from_cache == 0
        assert executor.stats.executed == 2

        warm = SweepExecutor(workers=1, cache=cache)
        warm.run(lossy)
        assert warm.stats.from_cache == 2
        assert warm.stats.executed == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)
        cache.store(task, execute_task(task))
        assert cache.load(task) is not None
        cache._path(task).write_text("not json{")
        assert cache.load(task) is None

    def test_key_covers_every_knob(self):
        cache = ResultCache.__new__(ResultCache)  # key() needs no root
        base = RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)
        variants = [
            RunTask(algorithm="okun-crash", n=4, t=1, attack="silent", seed=0),
            RunTask(algorithm="alg1", n=5, t=1, attack="silent", seed=0),
            RunTask(algorithm="alg1", n=4, t=1, attack="crash", seed=0),
            RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=1),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                workload="clustered",
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                collect_trace=True,
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                max_rounds=99,
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                engine="reference",
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                monitor=True,
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                chaos=FaultPlan(seed=1, drop=0.1),
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                chaos=FaultPlan(seed=2, drop=0.1),
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                chaos=FaultPlan(seed=1, drop=0.1, extra_crashes=1),
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                model=SystemModel.impersonation(2),
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                model=SystemModel.impersonation(3),
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                model=SystemModel.impersonation(2, seed=1),
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                model=SystemModel.partial_synchrony(0.1),
            ),
            RunTask(
                algorithm="alg1", n=4, t=1, attack="silent", seed=0,
                model=SystemModel.partial_synchrony(0.1, max_delay=2),
            ),
        ]
        keys = {cache.key(task) for task in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_key_derives_from_task_payload(self):
        """The key is built from ``to_dict`` itself, so a future RunTask
        field participates by construction — no second field list to
        forget to update."""
        cache = ResultCache.__new__(ResultCache)
        task = RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)
        expected = hashlib.sha256(
            json.dumps(
                {"schema": ResultCache.SCHEMA, **task.to_dict()},
                sort_keys=True,
            ).encode("utf-8")
        ).hexdigest()
        assert cache.key(task) == expected

    def test_schema_participates_in_key(self, monkeypatch):
        cache = ResultCache.__new__(ResultCache)
        task = RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)
        before = cache.key(task)
        monkeypatch.setattr(ResultCache, "SCHEMA", ResultCache.SCHEMA + 1)
        assert cache.key(task) != before

    def test_task_round_trips_with_chaos_and_monitor(self):
        task = RunTask(
            algorithm="alg1", n=7, t=2, attack="silent", seed=3,
            monitor=True,
            chaos=FaultPlan(seed=5, drop=0.2, crashes=((1, 2), (3, 4))),
        )
        assert RunTask.from_dict(task.to_dict()) == task

    def test_task_round_trips_with_model(self):
        task = RunTask(
            algorithm="floodset", n=5, t=1, attack="silent", seed=3,
            model=SystemModel.partial_synchrony(0.1, max_delay=2, seed=4),
        )
        assert RunTask.from_dict(task.to_dict()) == task

    def test_default_task_payload_is_backward_compatible(self):
        """Grids that never touch monitor/chaos/model keep their historical
        journal fingerprints: the new keys only appear when non-default."""
        payload = RunTask(
            algorithm="alg1", n=4, t=1, attack="silent", seed=0
        ).to_dict()
        assert "monitor" not in payload
        assert "chaos" not in payload
        assert "model" not in payload

    def test_explicit_classic_model_keys_like_no_model(self):
        """model=classic is the absence of a model; spelling it out must
        not split the cache."""
        cache = ResultCache.__new__(ResultCache)
        bare = RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)
        classic = RunTask(
            algorithm="alg1", n=4, t=1, attack="silent", seed=0,
            model=SystemModel.classic(),
        )
        assert "model" not in classic.to_dict()
        assert cache.key(classic) == cache.key(bare)


class _Grid:
    """Duck-typed sweep config: hand-picked cells, no registry filtering.

    Lets a test place an off-regime configuration in the grid — something
    ``SweepConfig`` would screen out — so worker failures are real
    exceptions crossing a real process boundary, not monkeypatched ones.
    """

    workload = "uniform"
    collect_trace = False
    max_rounds = 1000  # RunTask's default, so cache keys line up
    engine = "batched"

    def __init__(self, cells):
        self.cells = list(cells)

    def configurations(self):
        return list(self.cells)


GOOD = ("alg1", 4, 1, "silent", 0)
BAD = ("alg1", 6, 2, "silent", 0)  # n = 3t: rejected by the regime gate


class TestFailureContainment:
    def test_failed_cell_is_recorded_not_fatal(self, tmp_path):
        executor = SweepExecutor(workers=1, cache=tmp_path / "cache")
        rows = executor.run(_Grid([GOOD, BAD, ("alg1", 5, 1, "silent", 1)]))
        assert len(rows) == 3
        assert [row.failed for row in rows] == [False, True, False]
        assert "ConfigurationError" in rows[1].error
        assert rows[1].report.violations[0].startswith("failed: ")
        assert not rows[1].report.ok
        assert executor.stats.retried == 1
        assert executor.stats.failed == 1

    def test_pool_failures_are_retried_in_parent_then_recorded(self, tmp_path):
        executor = SweepExecutor(workers=2, cache=tmp_path / "cache")
        rows = executor.run(_Grid([GOOD, BAD, ("alg1", 5, 1, "silent", 1)]))
        assert [row.failed for row in rows] == [False, True, False]
        assert executor.stats.retried == 1
        assert executor.stats.failed == 1

    def test_failed_rows_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepExecutor(workers=1, cache=cache).run(_Grid([GOOD, BAD]))
        rerun = SweepExecutor(workers=1, cache=cache)
        rerun.run(_Grid([GOOD, BAD]))
        assert rerun.stats.from_cache == 1  # only the healthy cell
        assert rerun.stats.executed == 1  # the failure re-attempts

    def test_transient_failure_recovers_on_retry(self, monkeypatch):
        import repro.analysis.executor as executor_module

        real = execute_task
        calls = []

        def flaky(task):
            calls.append(task)
            if len(calls) == 1:
                raise OSError("transient worker loss")
            return real(task)

        monkeypatch.setattr(executor_module, "execute_task", flaky)
        executor = SweepExecutor(workers=1)
        rows = executor.run(_Grid([GOOD]))
        assert not rows[0].failed
        assert executor.stats.retried == 1
        assert executor.stats.failed == 0
        assert len(calls) == 2

    def test_for_failure_roundtrips_through_json(self):
        task = RunTask(algorithm="alg1", n=6, t=2, attack="silent", seed=0)
        summary = ExperimentSummary.for_failure(task, ValueError("bad cell"))
        clone = ExperimentSummary.from_dict(summary.to_dict())
        assert clone.failed
        assert clone.error == "ValueError: bad cell"
        assert clone.to_dict() == summary.to_dict()


class TestCacheCorruption:
    def _seed_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)
        cache.store(task, execute_task(task))
        assert cache.load(task) is not None
        return cache, task

    def test_bit_flip_is_a_logged_miss(self, tmp_path, caplog):
        cache, task = self._seed_entry(tmp_path)
        path = cache._path(task)
        raw = bytearray(path.read_bytes())
        target = raw.rindex(b":")  # flip inside the payload, not the key
        raw[target + 2] ^= 0x01
        path.write_bytes(bytes(raw))
        import logging

        with caplog.at_level(logging.WARNING, "repro.analysis.executor"):
            assert cache.load(task) is None
        assert any("discarding unusable cache entry" in m for m in caplog.messages)

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache, task = self._seed_entry(tmp_path)
        path = cache._path(task)
        path.write_bytes(path.read_bytes()[:40])
        assert cache.load(task) is None

    def test_stale_schema_is_a_logged_miss(self, tmp_path, caplog):
        import json
        import logging

        cache, task = self._seed_entry(tmp_path)
        path = cache._path(task)
        envelope = json.loads(path.read_text())
        envelope["schema"] = ResultCache.SCHEMA - 1
        path.write_text(json.dumps(envelope))
        with caplog.at_level(logging.WARNING, logger="repro.analysis.executor"):
            assert cache.load(task) is None
        assert any("stale schema" in message for message in caplog.messages)

    def test_checksum_mismatch_is_a_miss(self, tmp_path):
        import json

        cache, task = self._seed_entry(tmp_path)
        path = cache._path(task)
        envelope = json.loads(path.read_text())
        envelope["checksum"] = "0" * 64
        path.write_text(json.dumps(envelope))
        assert cache.load(task) is None

    def test_corrupt_entry_recovers_by_recomputing(self, tmp_path):
        cache, task = self._seed_entry(tmp_path)
        cache._path(task).write_text("garbage")
        grid = _Grid([(task.algorithm, task.n, task.t, task.attack, task.seed)])
        executor = SweepExecutor(workers=1, cache=cache)
        rows = executor.run(grid)
        assert executor.stats.executed == 1
        assert not rows[0].failed
        assert cache.load(task) is not None  # re-stored after recompute


class TestCacheDurability:
    """`store` must be atomic and durable: fsync the temp file, then
    `os.replace`. A process killed at *any* point during a put leaves
    either no entry (a plain miss) or the complete entry — never a torn
    file at the entry path."""

    def _task(self):
        return RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)

    def test_store_fsyncs_before_replace(self, tmp_path, monkeypatch):
        import os

        calls = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os, "replace",
            lambda a, b: (calls.append("replace"), real_replace(a, b))[1],
        )
        cache = ResultCache(tmp_path / "cache")
        task = self._task()
        cache.store(task, execute_task(task))
        assert "fsync" in calls and "replace" in calls
        assert calls.index("fsync") < calls.index("replace")

    def test_kill_before_replace_is_a_plain_miss(self, tmp_path, monkeypatch):
        # Simulate SIGKILL between the temp-file write and os.replace: the
        # entry path never appears, the next load is a miss, nothing raises.
        import os

        cache = ResultCache(tmp_path / "cache")
        task = self._task()
        summary = execute_task(task)
        monkeypatch.setattr(
            os, "replace", lambda a, b: (_ for _ in ()).throw(KeyboardInterrupt)
        )
        with pytest.raises(KeyboardInterrupt):
            cache.store(task, summary)
        monkeypatch.undo()
        assert not cache._path(task).exists()
        assert cache.load(task) is None  # miss, not a crash
        leftovers = list((tmp_path / "cache").glob("*.tmp"))
        assert leftovers and leftovers[0].read_text()  # torn temp remains

    def test_leftover_torn_temp_never_breaks_the_next_put(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = self._task()
        tmp = cache._path(task).with_name(cache._path(task).name + ".tmp")
        tmp.write_text('{"torn": tru')  # a killed writer's debris
        cache.store(task, execute_task(task))
        assert cache.load(task) is not None
        assert not tmp.exists()  # consumed by the successful replace


class TestExperimentSummary:
    def test_roundtrips_through_json_dict(self):
        task = RunTask(
            algorithm="alg1", n=4, t=1, attack="silent", seed=0,
            collect_trace=True,
        )
        summary = execute_task(task)
        clone = ExperimentSummary.from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()
        assert clone.report.names == summary.report.names
        assert clone.max_name == summary.max_name
        assert clone.effective_rounds == summary.effective_rounds

    def test_effective_rounds_prefers_settled_round(self):
        untraced = execute_task(
            RunTask(algorithm="floodset", n=5, t=1, attack="crash", seed=0)
        )
        assert untraced.settled_round is None
        assert untraced.effective_rounds == untraced.rounds

        # cht idles to a fixed horizon and logs when each process settles.
        traced = execute_task(
            RunTask(
                algorithm="cht", n=5, t=1, attack="crash", seed=0,
                collect_trace=True,
            )
        )
        assert traced.settled_round is not None
        assert traced.effective_rounds == traced.settled_round
        assert traced.effective_rounds <= traced.rounds

    def test_records_run_wall_clock(self):
        summary = execute_task(
            RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)
        )
        assert summary.elapsed_s > 0
        assert not summary.cached
