"""Durability suite: write-ahead journal, worker supervision, kill/resume.

The acceptance bar mirrors the crash-recovery arguments in the paper's
lineage: progress is durable before it is acted on, recovery is pure
replay, and a resumed run is *bit-identical* (in canonical, wall-clock
scrubbed form) to an uninterrupted control run. The harness here SIGKILLs
live campaign subprocesses at deterministic and at randomized seeded
journal positions via the ``REPRO_JOURNAL_CRASH_AFTER`` hook, resumes
them, and diffs the final reports against controls.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis import (
    CellBudget,
    ChaosCampaign,
    ChaosTask,
    RunJournal,
    SweepConfig,
    SweepExecutor,
    WorkerSupervisor,
    atomic_write_text,
    canonical_json,
    scan_journal,
)
from repro.analysis.journal import (
    CRASH_HOOK_ENV,
    JOURNAL_VERSION,
    _canonical,
    _record_checksum,
    scrub_volatile,
)
from repro.sim import JournalError, RunInterrupted

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _record_line(seq: int, type_: str, data: dict) -> str:
    record = {
        "v": JOURNAL_VERSION,
        "seq": seq,
        "type": type_,
        "data": data,
        "crc": _record_checksum(JOURNAL_VERSION, seq, type_, data),
    }
    return _canonical(record) + "\n"


def _header_data(cells: int = 3) -> dict:
    return {
        "kind": "chaos", "run_id": "r", "config": {},
        "fingerprint": "f" * 64, "cells": cells,
    }


class TestJournalFormat:
    def _create(self, tmp_path):
        return RunJournal.create(
            tmp_path / "r.jsonl", kind="chaos", run_id="r", config={},
            fingerprint="f" * 64, cells=3,
        )

    def test_round_trip(self, tmp_path):
        journal = self._create(tmp_path)
        journal.append("started", cell=0)
        journal.append("finished", cell=0, outcome={"status": "clean"})
        journal.append("started", cell=1)
        journal.close()
        state = scan_journal(tmp_path / "r.jsonl")
        assert state.run_id == "r" and state.kind == "chaos"
        assert state.cells == 3
        assert state.finished == {0: {"cell": 0, "outcome": {"status": "clean"}}}
        assert state.crash_set() == [1]
        assert state.unstarted() == [2]
        assert state.remaining() == [1, 2]
        assert not state.complete and not state.torn

    def test_create_refuses_existing_journal(self, tmp_path):
        self._create(tmp_path).close()
        with pytest.raises(JournalError, match="already exists"):
            self._create(tmp_path)

    def test_torn_tail_is_dropped_not_an_error(self, tmp_path):
        journal = self._create(tmp_path)
        journal.append("started", cell=0)
        journal.close()
        path = tmp_path / "r.jsonl"
        with open(path, "ab") as handle:
            handle.write(b'{"v": 1, "seq": 2, "ty')  # cut mid-append
        state = scan_journal(path)
        assert state.torn
        assert state.records == 2  # header + started survived
        assert state.crash_set() == [0]

    def test_torn_full_line_with_bad_checksum_is_also_a_tail(self, tmp_path):
        # A line can be complete-looking but carry a garbage checksum if the
        # crash landed inside the crc hex — still the tail, still dropped.
        journal = self._create(tmp_path)
        journal.append("started", cell=0)
        journal.close()
        path = tmp_path / "r.jsonl"
        line = _record_line(2, "finished", {"cell": 0})
        broken = line.replace('"crc":"', '"crc":"dead')
        with open(path, "ab") as handle:
            handle.write(broken.encode())
        state = scan_journal(path)
        assert state.torn and state.records == 2

    def test_open_truncates_torn_tail(self, tmp_path):
        journal = self._create(tmp_path)
        journal.append("started", cell=0)
        journal.close()
        path = tmp_path / "r.jsonl"
        good_prefix = path.read_bytes()
        with open(path, "ab") as handle:
            handle.write(b"torn-debris")
        reopened = RunJournal.open(path)
        reopened.append("finished", cell=0, outcome={})
        reopened.close()
        state = scan_journal(path)
        assert not state.torn
        assert state.finished
        # The debris was truncated; the new record sits right after the
        # last good one.
        assert path.read_bytes().startswith(good_prefix)

    def test_corruption_before_tail_is_fatal(self, tmp_path):
        path = tmp_path / "r.jsonl"
        lines = [
            _record_line(0, "header", _header_data()),
            "corrupted-mid-file\n",
            _record_line(1, "started", {"cell": 0}),
        ]
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="unparseable"):
            scan_journal(path)

    def test_sequence_gap_is_fatal(self, tmp_path):
        path = tmp_path / "r.jsonl"
        lines = [
            _record_line(0, "header", _header_data()),
            _record_line(2, "started", {"cell": 0}),  # seq 1 missing
        ]
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="sequence gap"):
            scan_journal(path)

    def test_record_before_header_is_fatal(self, tmp_path):
        path = tmp_path / "r.jsonl"
        lines = [
            _record_line(0, "started", {"cell": 0}),
            _record_line(1, "header", _header_data()),
        ]
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="before header"):
            scan_journal(path)

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        journal = self._create(tmp_path)
        journal.verify_fingerprint("f" * 64)  # matches
        with pytest.raises(JournalError, match="fingerprint mismatch"):
            journal.verify_fingerprint("0" * 64)
        journal.close()

    def test_reexecution_detector(self, tmp_path):
        journal = self._create(tmp_path)
        journal.append("started", cell=0)
        journal.append("finished", cell=0, outcome={})
        journal.append("started", cell=0)  # the discipline violation
        journal.close()
        state = scan_journal(tmp_path / "r.jsonl")
        assert state.reexecuted_finished() == [0]

    def test_scrub_volatile_zeroes_only_wall_clock_fields(self):
        payload = {
            "elapsed_s": 12.5, "workers": 8,
            "nested": [{"elapsed_s": 3.0, "rounds": 28}],
        }
        scrubbed = scrub_volatile(payload)
        assert scrubbed["elapsed_s"] == 0.0 and scrubbed["workers"] == 1
        assert scrubbed["nested"][0] == {"elapsed_s": 0.0, "rounds": 28}
        assert canonical_json(payload) == canonical_json(
            {**payload, "elapsed_s": 99.0, "workers": 2}
        )


class TestAtomicWrite:
    def test_writes_and_cleans_temp(self, tmp_path):
        target = tmp_path / "out.txt"
        assert atomic_write_text(target, "payload") == target
        assert target.read_text() == "payload"
        assert not list(tmp_path.glob("*.tmp"))

    def test_kill_mid_write_preserves_the_old_artifact(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "out.csv"
        target.write_text("old,complete,data\n")
        monkeypatch.setattr(
            os, "replace", lambda a, b: (_ for _ in ()).throw(KeyboardInterrupt)
        )
        with pytest.raises(KeyboardInterrupt):
            atomic_write_text(target, "new,half")
        monkeypatch.undo()
        assert target.read_text() == "old,complete,data\n"

    def test_export_csv_goes_through_the_atomic_path(
        self, tmp_path, monkeypatch
    ):
        from repro.analysis import export_csv
        from repro.analysis.executor import RunTask, execute_task

        record = execute_task(
            RunTask(algorithm="alg1", n=4, t=1, attack="silent", seed=0)
        )
        calls = []
        real = os.replace
        monkeypatch.setattr(
            os, "replace", lambda a, b: (calls.append(str(a)), real(a, b))[1]
        )
        export_csv([record], tmp_path / "rows.csv")
        assert calls and calls[0].endswith("rows.csv.tmp")
        assert (tmp_path / "rows.csv").read_text().startswith("algorithm,")


# ---------------------------------------------------------------- supervisor

def _echo_runner(task):
    return task * task


def _crash_once_runner(flag_path):
    # First execution dies without reporting (a real worker crash); the
    # retry finds the flag and succeeds. Module-level and picklable.
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("crashed")
        os._exit(1)
    return "recovered"


def _sleep_runner(seconds):
    time.sleep(seconds)
    return "done"


class TestWorkerSupervisor:
    def test_runs_items_and_reports_in_callbacks(self):
        seen = {}
        stats = WorkerSupervisor(_echo_runner, workers=2).run(
            [(i, i) for i in range(6)],
            on_result=lambda index, task, result: seen.__setitem__(index, result),
        )
        assert seen == {i: i * i for i in range(6)}
        assert stats.completed == 6 and stats.failed == 0

    def test_worker_crash_is_retried_then_recovers(self, tmp_path):
        flag = tmp_path / "crashed.flag"
        results = []
        stats = WorkerSupervisor(
            _crash_once_runner, workers=1, retries=1
        ).run(
            [(0, str(flag))],
            on_result=lambda index, task, result: results.append(result),
        )
        assert results == ["recovered"]
        assert stats.retried == 1 and stats.worker_restarts >= 1
        assert stats.completed == 1 and stats.failed == 0

    def test_wall_budget_kill_is_terminal_not_retried(self):
        failures = []
        stats = WorkerSupervisor(
            _sleep_runner, workers=1,
            budget=CellBudget(wall_s=0.4), retries=3,
        ).run(
            [(0, 30.0)],
            on_failure=failures.append,
        )
        assert [f.kind for f in failures] == ["wall-budget"]
        assert "ResourceBudgetExceeded" in failures[0].detail
        assert stats.budget_kills == 1
        assert stats.retried == 0  # budget kills are deterministic
        assert stats.failed == 1

    def test_exhausted_retries_report_crashed(self, tmp_path):
        # No flag file is ever written readable -> use a directory the
        # worker cannot create the flag in? Simpler: point at a path whose
        # parent does not exist, so the runner dies on every attempt.
        failures = []
        stats = WorkerSupervisor(
            _crash_once_runner, workers=1, retries=1
        ).run(
            [(0, str(tmp_path / "missing-dir" / "flag"))],
            on_failure=failures.append,
        )
        assert [f.kind for f in failures] == ["crashed"]
        assert failures[0].attempts == 2  # original + one retry
        assert stats.failed == 1 and stats.retried == 1

    @pytest.mark.skipif(
        not os.path.exists(f"/proc/{os.getpid()}/statm"),
        reason="RSS budgets read /proc (Linux only)",
    )
    def test_rss_budget_via_proc(self):
        from repro.analysis.supervisor import rss_mb_of

        rss = rss_mb_of(os.getpid())
        assert rss is not None and rss > 1.0
        assert rss_mb_of(2 ** 30) is None  # no such pid -> unenforced


# ------------------------------------------------- journaled-run equivalence

GRID = SweepConfig(
    algorithms=["alg1"], sizes=[(7, 2)], attacks=["silent"], seeds=[0, 1]
)

CELLS = [
    ChaosTask("alg1", 7, 2, seed=seed, chaos_seed=0, drop=drop)
    for seed in (0, 1) for drop in (0.0, 0.2)
]


def _sweep_journal(tmp_path, name="sweep.jsonl"):
    tasks = SweepExecutor.tasks_for(GRID)
    return RunJournal.create(
        tmp_path / name, kind="sweep", run_id="s",
        config={"sweep": {}, "cache": None,
                "budget": {"wall_s": None, "rss_mb": None}},
        fingerprint=SweepExecutor.fingerprint(tasks), cells=len(tasks),
    )


def _chaos_journal(tmp_path, name="chaos.jsonl", tasks=CELLS):
    return RunJournal.create(
        tmp_path / name, kind="chaos", run_id="c",
        config={"tasks": [t.to_dict() for t in tasks], "timeout_s": 120.0,
                "budget": {"wall_s": None, "rss_mb": None}},
        fingerprint=ChaosCampaign.fingerprint(tasks), cells=len(tasks),
    )


class TestJournaledEquivalence:
    def test_journaled_sweep_matches_legacy_path(self, tmp_path):
        legacy = SweepExecutor(workers=1).run(GRID)
        with _sweep_journal(tmp_path) as journal:
            durable = SweepExecutor(workers=1).run(GRID, journal=journal)
        assert canonical_json({"rows": [r.to_dict() for r in durable]}) == \
            canonical_json({"rows": [r.to_dict() for r in legacy]})

    def test_resume_of_complete_sweep_executes_nothing(self, tmp_path):
        with _sweep_journal(tmp_path) as journal:
            first = SweepExecutor(workers=1).run(GRID, journal=journal)
        executor = SweepExecutor(workers=1)
        with RunJournal.open(tmp_path / "sweep.jsonl") as journal:
            restored = executor.run(GRID, journal=journal)
        assert executor.stats.executed == 0
        assert executor.stats.restored == len(first)
        assert canonical_json({"rows": [r.to_dict() for r in restored]}) == \
            canonical_json({"rows": [r.to_dict() for r in first]})
        state = scan_journal(tmp_path / "sweep.jsonl")
        assert state.reexecuted_finished() == []

    def test_journaled_chaos_matches_legacy_path(self, tmp_path):
        legacy = ChaosCampaign(workers=1).run(CELLS)
        with _chaos_journal(tmp_path) as journal:
            durable = ChaosCampaign(workers=1).run(CELLS, journal=journal)
        assert durable.canonical() == legacy.canonical()

    def test_resume_of_complete_chaos_executes_nothing(self, tmp_path):
        with _chaos_journal(tmp_path) as journal:
            first = ChaosCampaign(workers=1).run(CELLS, journal=journal)
        with RunJournal.open(tmp_path / "chaos.jsonl") as journal:
            restored = ChaosCampaign(workers=1).run(CELLS, journal=journal)
        assert restored.canonical() == first.canonical()
        state = scan_journal(tmp_path / "chaos.jsonl")
        assert state.reexecuted_finished() == []
        # Exactly one `started` per cell across both runs: the resume
        # dispatched nothing.
        assert all(count == 1 for count in state.started.values())

    def test_fingerprint_gate_rejects_a_changed_grid(self, tmp_path):
        with _chaos_journal(tmp_path) as journal:
            ChaosCampaign(workers=1).run(CELLS, journal=journal)
        other_grid = CELLS[:-1]  # one cell fewer: a different run
        with RunJournal.open(tmp_path / "chaos.jsonl") as journal:
            with pytest.raises(JournalError, match="fingerprint mismatch"):
                ChaosCampaign(workers=1).run(other_grid, journal=journal)


# -------------------------------------------------------- kill/resume harness

CLI_GRID = [
    "--algorithms", "alg1", "--sizes", "7:2",
    "--seeds", "0", "1", "2", "3", "4", "5",
    "--chaos-seeds", "0", "--drop", "0.1", "--workers", "1",
]
CLI_CELLS = 12  # 6 seeds x (clean + one drop variant)


def _cli(args, *, env=None, **kwargs):
    base = {**os.environ, "PYTHONPATH": SRC}
    if env:
        base.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=base, capture_output=True, text=True, timeout=180, **kwargs,
    )


def _control_report(tmp_path):
    control = _cli(
        ["chaos", *CLI_GRID, "--json", str(tmp_path / "control.json")]
    )
    assert control.returncode == 0, control.stderr
    return json.loads((tmp_path / "control.json").read_text())


class TestKillResume:
    def test_sigkill_mid_campaign_then_resume_is_identical(self, tmp_path):
        runs = tmp_path / "runs"
        killed = _cli(
            ["chaos", *CLI_GRID, "--journal", str(runs), "--run-id", "k"],
            env={CRASH_HOOK_ENV: "finished:4"},
        )
        assert killed.returncode == -signal.SIGKILL
        state = scan_journal(runs / "k.jsonl")
        assert len(state.finished) == 4
        assert not state.complete

        resumed = _cli([
            "runs", "resume", "k", "--runs-dir", str(runs),
            "--workers", "1", "--json", str(tmp_path / "resumed.json"),
        ])
        assert resumed.returncode == 0, resumed.stderr

        doctor = _cli([
            "runs", "doctor", "k", "--runs-dir", str(runs),
            "--assert-no-reexecution",
        ])
        assert doctor.returncode == 0, doctor.stdout
        assert "reexecution: none" in doctor.stdout

        resumed_report = json.loads((tmp_path / "resumed.json").read_text())
        assert canonical_json(resumed_report) == canonical_json(
            _control_report(tmp_path)
        )

    def test_sigint_drains_and_exits_resumable(self, tmp_path):
        runs = tmp_path / "runs"
        env = {**os.environ, "PYTHONPATH": SRC}
        grid = [
            "--algorithms", "alg1", "--sizes", "7:2",
            "--seeds", "0", "1", "2", "3", "4", "5", "6", "7", "8", "9",
            "--chaos-seeds", "0", "1", "--drop", "0.1", "0.2",
            "--workers", "1",
        ]
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "chaos", *grid,
             "--journal", str(runs), "--run-id", "i"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        # Wait until at least one cell is durably finished, then preempt.
        deadline = time.monotonic() + 60
        journal_path = runs / "i.jsonl"
        while time.monotonic() < deadline:
            if journal_path.exists() and scan_journal(journal_path).finished:
                break
            time.sleep(0.1)
        process.send_signal(signal.SIGINT)
        _, stderr = process.communicate(timeout=120)
        state = scan_journal(journal_path)
        if state.complete:
            pytest.skip("campaign finished before SIGINT landed")
        assert process.returncode == 4, stderr  # EXIT_INTERRUPTED
        assert "runs resume i" in stderr
        assert state.interrupted
        assert state.crash_set() == []  # the drain left nothing in flight

        resumed = _cli(
            ["runs", "resume", "i", "--runs-dir", str(runs), "--workers", "1"]
        )
        assert resumed.returncode == 0, resumed.stderr
        final = scan_journal(journal_path)
        assert final.complete
        assert final.reexecuted_finished() == []

    @pytest.mark.slow
    def test_randomized_kill_points_always_resume_identically(self, tmp_path):
        control = _control_report(tmp_path)
        rng = random.Random(0xD1CE)
        for round_no in range(4):
            kill_after = rng.randint(1, CLI_CELLS - 1)
            runs = tmp_path / f"runs-{round_no}"
            run_id = f"k{round_no}"
            killed = _cli(
                ["chaos", *CLI_GRID, "--journal", str(runs),
                 "--run-id", run_id],
                env={CRASH_HOOK_ENV: f"finished:{kill_after}"},
            )
            assert killed.returncode == -signal.SIGKILL, (
                f"round {round_no}: kill at {kill_after} did not fire"
            )
            out = tmp_path / f"resumed-{round_no}.json"
            resumed = _cli([
                "runs", "resume", run_id, "--runs-dir", str(runs),
                "--workers", "1", "--json", str(out),
            ])
            assert resumed.returncode == 0, resumed.stderr
            state = scan_journal(runs / f"{run_id}.jsonl")
            assert state.complete
            assert state.reexecuted_finished() == []
            assert canonical_json(json.loads(out.read_text())) == \
                canonical_json(control), f"diverged at kill point {kill_after}"


class TestDoctorRepair:
    def test_doctor_reports_and_truncates_a_torn_tail(self, tmp_path, capsys):
        from repro.cli import main

        with _chaos_journal(tmp_path, name="t.jsonl", tasks=CELLS[:2]) as journal:
            ChaosCampaign(workers=1).run(CELLS[:2], journal=journal)

        path = tmp_path / "t.jsonl"
        good = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"v":1,"seq":99,"torn')
        code = main(["runs", "doctor", "t", "--runs-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "torn tail" in out
        assert path.stat().st_size == good  # repaired in place
        assert not scan_journal(path).torn
