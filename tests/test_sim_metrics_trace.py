"""Unit tests for metrics accounting and the trace recorder."""

from __future__ import annotations

from repro.core.messages import IdMessage
from repro.sim import RunMetrics, TraceRecorder
from repro.sim.messages import KIND_BITS


class TestRunMetrics:
    def test_round_accounting(self):
        metrics = RunMetrics(id_bits=10, rank_bits=4)
        record = metrics.begin_round(1)
        metrics.count_correct(record, [IdMessage(1), IdMessage(2)])
        assert metrics.round_count == 1
        assert metrics.correct_messages == 2
        assert metrics.correct_bits == 2 * (KIND_BITS + 10)

    def test_peak_message_bits(self):
        from repro.core.messages import MultiEchoMessage

        metrics = RunMetrics(id_bits=10, rank_bits=4)
        record = metrics.begin_round(1)
        metrics.count_correct(
            record, [IdMessage(1), MultiEchoMessage.from_ids(range(1, 6))]
        )
        assert metrics.peak_message_bits == KIND_BITS + 5 * 10

    def test_byzantine_counted_separately(self):
        metrics = RunMetrics()
        record = metrics.begin_round(1)
        record.byzantine_messages += 7
        assert metrics.byzantine_messages == 7
        assert metrics.correct_messages == 0

    def test_totals_across_rounds(self):
        metrics = RunMetrics(id_bits=10, rank_bits=4)
        for round_no in (1, 2, 3):
            record = metrics.begin_round(round_no)
            metrics.count_correct(record, [IdMessage(round_no)])
        assert metrics.round_count == 3
        assert metrics.correct_messages == 3


class TestTraceRecorder:
    def test_bind_tags_process(self):
        recorder = TraceRecorder()
        trace0 = recorder.bind(0)
        trace1 = recorder.bind(1)
        trace0(1, "x", "a")
        trace1(2, "y", "b")
        assert len(recorder) == 2
        assert recorder.select(process=0)[0].detail == "a"

    def test_select_filters_compose(self):
        recorder = TraceRecorder()
        trace = recorder.bind(3)
        trace(1, "ranks", {})
        trace(2, "ranks", {})
        trace(2, "decided", 5)
        assert len(recorder.select(event="ranks")) == 2
        assert len(recorder.select(event="ranks", round_no=2)) == 1
        assert recorder.select(event="decided", process=3)[0].round_no == 2

    def test_rounds_listing(self):
        recorder = TraceRecorder()
        trace = recorder.bind(0)
        trace(5, "a", None)
        trace(2, "b", None)
        trace(5, "c", None)
        assert recorder.rounds() == [2, 5]

    def test_iteration(self):
        recorder = TraceRecorder()
        recorder.bind(0)(1, "e", None)
        events = list(recorder)
        assert len(events) == 1 and events[0].event == "e"
