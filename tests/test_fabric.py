"""Coordinator/worker fabric: equivalence, resume, and kill/reclaim.

Two layers of tests:

* Python-level: a fabric run (``store=``) must produce the same rows as
  the legacy in-process path for both sweeps and chaos campaigns, on both
  store backends; caches prefill, part-finished stores resume, and an
  attached journal mirrors the fabric's lease traffic.

* CLI-level (the distributed story): a coordinator-only sweep with
  externally started workers, one of which is SIGKILLed mid-cell by the
  deterministic ``REPRO_STORE_CRASH_AFTER`` hook. The dead worker's cell
  must be reclaimed after lease expiry, executed exactly once more, and
  the final CSV must be byte-identical to a single-process control run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis import (
    ChaosCampaign,
    PollBackoff,
    Worker,
    Coordinator,
    ResultCache,
    RunJournal,
    SweepConfig,
    SweepExecutor,
    chaos_grid,
    run_sweep,
    scan_journal,
)
from repro.analysis.store import STORE_CRASH_HOOK_ENV, open_store

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

BACKENDS = ["dir", "sqlite"]

SWEEP = SweepConfig(
    algorithms=["alg1"],
    sizes=[(7, 2)],
    attacks=["silent", "duplicates"],
    seeds=[0, 1],
    max_rounds=64,
)


def store_url(kind: str, tmp_path) -> str:
    if kind == "dir":
        return f"dir:{tmp_path / 'store'}"
    return f"sqlite:{tmp_path / 'store.sqlite'}"


def scrubbed(rows) -> list:
    """Row dicts with the volatile wall-clock zeroed."""
    out = []
    for row in rows:
        payload = row.to_dict()
        payload["elapsed_s"] = 0.0
        out.append(payload)
    return out


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestSweepEquivalence:
    def test_fabric_rows_match_the_legacy_pool(self, backend, tmp_path):
        control = run_sweep(SWEEP, workers=1)
        fabric = run_sweep(SWEEP, workers=1, store=store_url(backend, tmp_path))
        assert scrubbed(fabric) == scrubbed(control)

    def test_journal_and_store_are_mutually_exclusive(self, tmp_path):
        executor = SweepExecutor(workers=1)
        with pytest.raises(ValueError, match="mutually exclusive"):
            executor.run(
                SWEEP,
                journal=object(),
                store=store_url("dir", tmp_path),
            )


class TestChaosEquivalence:
    def test_fabric_report_matches_the_legacy_campaign(
        self, backend, tmp_path
    ):
        tasks = chaos_grid(
            ["alg1"], [(7, 2)], seeds=[0], chaos_seeds=[0, 1],
            drop=[0.2], duplicate=[0.2], max_rounds=48,
        )
        control = ChaosCampaign(workers=1).run(list(tasks))
        fabric = ChaosCampaign(workers=1).run(
            list(tasks), store=store_url(backend, tmp_path)
        )
        assert fabric.canonical() == control.canonical()


class TestCacheAndResume:
    def test_cache_prefills_the_store(self, backend, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(SWEEP, workers=1, cache=cache)  # warm the cache

        executed = []
        executor = SweepExecutor(
            workers=1, cache=cache, run_hook=executed.append
        )
        stats_rows = executor.run(
            SWEEP, store=store_url(backend, tmp_path)
        )
        assert executed == []  # nothing ran: every cell came from the memo
        assert executor.stats.from_cache == len(stats_rows)
        assert all(row.cached for row in stats_rows)

    def test_second_run_against_the_same_store_is_a_restore(
        self, backend, tmp_path
    ):
        url = store_url(backend, tmp_path)
        first = run_sweep(SWEEP, workers=1, store=url)

        executor = SweepExecutor(workers=1)
        again = executor.run(SWEEP, store=url)
        assert executor.stats.restored == len(first)
        assert executor.stats.executed == 0
        assert scrubbed(again) == scrubbed(first)


class TestJournalMirror:
    def test_lease_traffic_lands_in_an_attached_journal(
        self, backend, tmp_path
    ):
        cells = [
            task.to_dict() for task in SweepExecutor.tasks_for(SWEEP)
        ]
        journal = RunJournal.create(
            tmp_path / "runs" / "mirror.journal",
            kind="sweep", run_id="mirror", config={},
            fingerprint="fp-mirror", cells=len(cells),
        )
        coordinator = Coordinator(
            open_store(store_url(backend, tmp_path)), journal=journal
        )
        rows = coordinator.run("sweep", cells, fingerprint="fp-mirror")
        journal.close()

        state = scan_journal(tmp_path / "runs" / "mirror.journal")
        leased = {
            cell for cell, events in state.events.items()
            if any(kind == "leased" for kind, _ in events)
        }
        assert leased == set(range(len(rows)))


def _cli(args, *, env=None, timeout=180):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env={**os.environ, "PYTHONPATH": SRC, **(env or {})},
        capture_output=True,
        text=True,
        timeout=timeout,
    )


CLI_GRID = [
    "--algorithms", "alg1",
    "--sizes", "7:2",
    "--seeds", "0", "1", "2", "3",
]


class TestKillReclaim:
    """Satellite: SIGKILL a worker mid-cell; the fabric must recover."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dead_workers_cell_is_reclaimed_and_run_exactly_once_more(
        self, backend, tmp_path
    ):
        control_csv = tmp_path / "control.csv"
        done = _cli(
            ["sweep", *CLI_GRID, "--workers", "1", "--csv", str(control_csv)]
        )
        assert done.returncode == 0, done.stderr

        url = store_url(backend, tmp_path)
        fabric_csv = tmp_path / "fabric.csv"
        coordinator = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "sweep", *CLI_GRID,
                "--workers", "1", "--store", url, "--coordinator-only",
                "--csv", str(fabric_csv),
            ],
            env={**os.environ, "PYTHONPATH": SRC},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # Worker A dies by SIGKILL the instant its second claim is
            # durable: one cell finished, one cell leased-but-dead.
            killed = _cli(
                [
                    "worker", "--store", url, "--worker-id", "doomed",
                    "--lease", "1", "--wait-for-store", "60",
                ],
                env={STORE_CRASH_HOOK_ENV: "claim:2"},
            )
            assert killed.returncode == -signal.SIGKILL

            # Worker B claims the rest, takes over the dead lease after it
            # expires (~1s), and runs the store dry.
            clean = _cli(
                [
                    "worker", "--store", url, "--worker-id", "medic",
                    "--lease", "1", "--wait-for-store", "60",
                ]
            )
            assert clean.returncode == 0, clean.stderr

            out, err = coordinator.communicate(timeout=120)
            assert coordinator.returncode == 0, err
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.communicate()

        # The reclaim actually happened, and nothing ran twice.
        store = open_store(url)
        events = [e["event"] for e in store.events()]
        assert "reclaimed" in events
        finished = [
            e["cell"] for e in store.events() if e["event"] == "finished"
        ]
        assert sorted(finished) == sorted(set(finished))  # once per cell

        doctor = _cli(
            ["runs", "doctor", "--store", url, "--assert-no-reexecution"]
        )
        assert doctor.returncode == 0, doctor.stdout + doctor.stderr
        assert "reexecution: none" in doctor.stdout
        assert "complete" in doctor.stdout.splitlines()[-1]

        assert fabric_csv.read_bytes() == control_csv.read_bytes()


class TestSubprocessWorkers:
    def test_spawned_workers_produce_the_control_csv(self, tmp_path):
        control_csv = tmp_path / "control.csv"
        fabric_csv = tmp_path / "fabric.csv"
        done = _cli(
            ["sweep", *CLI_GRID, "--workers", "1", "--csv", str(control_csv)]
        )
        assert done.returncode == 0, done.stderr

        url = f"sqlite:{tmp_path / 'fan.sqlite'}"
        fanned = _cli(
            [
                "sweep", *CLI_GRID, "--workers", "2", "--store", url,
                "--csv", str(fabric_csv),
            ]
        )
        assert fanned.returncode == 0, fanned.stderr
        assert fabric_csv.read_bytes() == control_csv.read_bytes()


class TestPollBackoff:
    """Satellite: the worker's idle poll backs off with full jitter."""

    def test_bounds_grow_exponentially_to_the_cap(self):
        drawn = []

        def rng(low, high):
            drawn.append((low, high))
            return high

        backoff = PollBackoff(0.2, 5.0, rng=rng)
        delays = [backoff.next_delay() for _ in range(6)]
        # Upper bound doubles from the floor until the cap clamps it.
        assert drawn == [
            (0.2, 0.2), (0.2, 0.4), (0.2, 0.8),
            (0.2, 1.6), (0.2, 3.2), (0.2, 5.0),
        ]
        assert delays == [high for _, high in drawn]

    def test_reset_returns_to_the_floor(self):
        backoff = PollBackoff(0.2, 5.0, rng=lambda low, high: high)
        for _ in range(4):
            backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == pytest.approx(0.2)

    def test_delay_never_leaves_the_floor_cap_band(self):
        import random

        rng = random.Random(7)
        backoff = PollBackoff(0.1, 2.0, rng=rng.uniform)
        for _ in range(50):
            delay = backoff.next_delay()
            assert 0.1 <= delay <= 2.0

    def test_floor_and_cap_are_validated(self):
        with pytest.raises(ValueError):
            PollBackoff(0.0)
        with pytest.raises(ValueError):
            PollBackoff(1.0, 0.5)

    def test_worker_claim_resets_the_backoff(self, tmp_path):
        """A worker that has been starved drops back to the floor the
        moment a cell becomes claimable."""
        url = f"sqlite:{tmp_path / 'backoff.sqlite'}"
        coordinator = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "sweep", *CLI_GRID,
                "--store", url, "--coordinator-only",
            ],
            env={**os.environ, "PYTHONPATH": SRC},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            worker = Worker(
                url, poll_s=0.01, poll_cap_s=0.05, wait_store_s=60
            )
            for _ in range(3):
                worker.backoff.next_delay()  # pretend we starved a while
            stats = worker.run()
            assert stats.completed > 0
            assert worker.backoff._attempts == 0  # reset on the last claim
            out, err = coordinator.communicate(timeout=120)
            assert coordinator.returncode == 0, err
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.communicate()
