"""Result-store contract suite, exercised identically for every backend.

The lease/terminal/claim *semantics* — lowest-index claims, attempt
counting with exhaustion, first-terminal-wins, ``LeaseLost`` on takeover,
the event taxonomy ``runs doctor --store`` reads — are part of the
:class:`~repro.analysis.store.ResultStore` interface, not of any backend.
Every test here is parametrized over :class:`LocalDirStore` and
:class:`SqliteStore` so a backend cannot drift from the contract.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis.store import (
    Claim,
    LocalDirStore,
    SqliteStore,
    STORE_SCHEMA,
    open_store,
    seal,
    store_doctor,
    unseal,
)
from repro.sim import LeaseLost, StoreError

BACKENDS = ["dir", "sqlite"]


def make_store(kind: str, tmp_path, name: str = "store"):
    if kind == "dir":
        return LocalDirStore(tmp_path / name)
    return SqliteStore(tmp_path / f"{name}.sqlite")


def seeded(kind, tmp_path, cells=4, max_attempts=3, fingerprint="fp-1"):
    store = make_store(kind, tmp_path)
    store.seed(
        kind="sweep",
        run_id="r1",
        fingerprint=fingerprint,
        cells=[{"cell": i} for i in range(cells)],
        max_attempts=max_attempts,
    )
    return store


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestSealUnseal:
    def test_roundtrip(self):
        body = {"a": 1, "b": [2, 3]}
        assert unseal(seal(body, schema=1), schema=1) == body

    def test_defects_are_named(self):
        envelope = seal({"a": 1}, schema=1)
        with pytest.raises(ValueError, match="not an object"):
            unseal([1], schema=1)
        with pytest.raises(ValueError, match="stale schema"):
            unseal(envelope, schema=2)
        tampered = dict(envelope, checksum="0" * 64)
        with pytest.raises(ValueError, match="checksum mismatch"):
            unseal(tampered, schema=1)


class TestLifecycle:
    def test_seed_header_task_roundtrip(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        header = store.header()
        assert header["kind"] == "sweep"
        assert header["run_id"] == "r1"
        assert header["cells"] == 4
        assert store.cells == 4
        assert store.task(2) == {"cell": 2}
        assert not store.complete

    def test_reseed_same_fingerprint_is_a_resume(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        claim = store.claim("w1")
        store.finish(claim, {"ok": True})
        store.seed(
            kind="sweep", run_id="r1", fingerprint="fp-1",
            cells=[{"cell": i} for i in range(4)],
        )
        assert store.terminal(claim.cell) is not None

    def test_reseed_other_fingerprint_refuses(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        with pytest.raises(StoreError, match="different config fingerprint"):
            store.seed(
                kind="sweep", run_id="r2", fingerprint="fp-2",
                cells=[{"cell": 0}],
            )

    def test_unseeded_store_has_no_header_and_no_claims(
        self, backend, tmp_path
    ):
        store = make_store(backend, tmp_path, "empty")
        assert store.header() is None
        if backend == "dir":
            assert store.claim("w1") is None
        with pytest.raises(StoreError, match="not seeded"):
            store.wait_for_header(0.2, poll_s=0.05)


class TestLeases:
    def test_claims_hand_out_lowest_open_cell(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        first = store.claim("w1")
        second = store.claim("w2")
        assert (first.cell, second.cell) == (0, 1)
        assert first.attempt == 1
        assert first.token != second.token

    def test_all_leased_means_no_claim(self, backend, tmp_path):
        store = seeded(backend, tmp_path, cells=1)
        assert store.claim("w1") is not None
        assert store.claim("w2") is None

    def test_renew_extends_and_survives(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        claim = store.claim("w1", lease_s=0.25)
        renewed = store.renew(claim, lease_s=60.0)
        assert renewed.expires_at > claim.expires_at
        time.sleep(0.3)
        # The renewed lease is live: nobody can steal the cell.
        other = store.claim("w2", lease_s=0.25)
        assert other is None or other.cell != claim.cell

    def test_expired_lease_is_taken_over_with_attempt_bump(
        self, backend, tmp_path
    ):
        store = seeded(backend, tmp_path, cells=1)
        dead = store.claim("w1", lease_s=0.05)
        time.sleep(0.1)
        takeover = store.claim("w2", lease_s=30.0)
        assert takeover.cell == dead.cell
        assert takeover.attempt == 2
        with pytest.raises(LeaseLost):
            store.renew(dead)
        events = [e["event"] for e in store.events()]
        assert "reclaimed" in events

    def test_reclaim_expired_releases_dead_leases(self, backend, tmp_path):
        store = seeded(backend, tmp_path, cells=2)
        store.claim("w1", lease_s=0.05)
        live = store.claim("w2", lease_s=60.0)
        time.sleep(0.1)
        assert store.reclaim_expired() == [0]
        assert store.counts()["pending"] == 1
        assert store.counts()["leased"] == 1
        assert live.cell == 1

    def test_exhausted_cell_becomes_a_terminal_failure(
        self, backend, tmp_path
    ):
        store = seeded(backend, tmp_path, cells=1, max_attempts=2)
        for _ in range(2):
            assert store.claim("w", lease_s=0.05) is not None
            time.sleep(0.1)
        assert store.claim("w") is None  # exhaustion converts, no new lease
        record = store.terminal(0)
        assert record["state"] == "failed"
        assert "attempts exhausted" in record["reason"]
        assert record["payload"] is None
        events = [e["event"] for e in store.events()]
        assert "exhausted" in events
        assert store.complete


class TestTerminals:
    def test_finish_roundtrip(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        claim = store.claim("w1")
        assert store.finish(claim, {"rounds": 7}) is True
        record = store.terminal(claim.cell)
        assert record["state"] == "finished"
        assert record["payload"] == {"rounds": 7}
        assert record["attempt"] == 1
        counts = store.counts()
        assert counts["finished"] == 1 and counts["leased"] == 0

    def test_first_terminal_wins(self, backend, tmp_path):
        store = seeded(backend, tmp_path, cells=1)
        store.write_terminal(0, "finished", {"winner": True})
        assert store.write_terminal(0, "finished", {"winner": False}) is False
        assert store.terminal(0)["payload"] == {"winner": True}
        events = [e["event"] for e in store.events()]
        assert "double-execution" in events

    def test_stale_result_is_refused_with_lease_lost(self, backend, tmp_path):
        store = seeded(backend, tmp_path, cells=1)
        dead = store.claim("w1", lease_s=0.05)
        time.sleep(0.1)
        alive = store.claim("w2", lease_s=30.0)
        with pytest.raises(LeaseLost):
            store.finish(dead, {"from": "the-dead"})
        assert store.terminal(0) is None  # nothing durable from the loser
        assert store.finish(alive, {"from": "the-living"}) is True
        assert store.terminal(0)["payload"] == {"from": "the-living"}
        events = [e["event"] for e in store.events()]
        assert "stale-result" in events

    def test_fail_and_quarantine_record_reasons(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        first = store.claim("w1")
        store.fail(first, {"failed": True}, reason="crashed")
        second = store.claim("w1")
        store.quarantine(second, {"killed": True}, reason="wall-budget")
        assert store.terminal(first.cell)["reason"] == "crashed"
        assert store.terminal(second.cell)["reason"] == "wall-budget"
        counts = store.counts()
        assert counts["failed"] == 1 and counts["quarantined"] == 1

    def test_torn_terminal_is_dropped_and_reexecutable(
        self, backend, tmp_path
    ):
        store = seeded(backend, tmp_path, cells=1)
        claim = store.claim("w1")
        store.finish(claim, {"ok": True})
        if backend == "dir":
            (store._terminal / "0.json").write_text('{"schema": 1, "tru')
        else:
            store._connection().execute(
                "UPDATE cells SET payload='{\"torn\"' WHERE idx=0"
            )
        assert store.terminal(0) is None
        assert store.claim("w2") is not None  # the cell is open again
        events = [e["event"] for e in store.events()]
        assert "torn-result" in events


class TestMemo:
    def test_roundtrip_and_miss(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        assert store.load_memo("k1", schema=4) is None
        store.store_memo("k1", {"rounds": 3}, schema=4)
        assert store.load_memo("k1", schema=4) == {"rounds": 3}

    def test_corrupt_memo_raises_for_the_caller_to_log(
        self, backend, tmp_path
    ):
        store = seeded(backend, tmp_path)
        store.store_memo("k1", {"rounds": 3}, schema=4)
        with pytest.raises(ValueError, match="stale schema"):
            store.load_memo("k1", schema=5)

    def test_local_dir_memo_layout_matches_the_prefabric_cache(
        self, tmp_path
    ):
        """Flat-rooted memo files are byte-compatible with the pre-fabric
        ``ResultCache`` format: same envelope keys, same order, same path."""
        store = LocalDirStore(tmp_path / "cache", memo_subdir="")
        store.store_memo("abc", {"rounds": 3}, schema=4)
        raw = json.loads((tmp_path / "cache" / "abc.json").read_text())
        assert list(raw) == ["schema", "checksum", "summary"]
        assert raw["summary"] == {"rounds": 3}


class TestEvents:
    def test_events_since_cursor(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        store.record_event("claimed", cell=0, worker="w1")
        first, cursor = store.events_since(None)
        assert [e["event"] for e in first] == ["claimed"]
        store.record_event("reclaimed", cell=0, worker="w2")
        second, cursor = store.events_since(cursor)
        assert [e["event"] for e in second] == ["reclaimed"]
        third, _ = store.events_since(cursor)
        assert third == []


class TestOpenStore:
    def test_url_forms(self, tmp_path):
        assert isinstance(open_store(tmp_path / "d"), LocalDirStore)
        assert isinstance(open_store(f"dir:{tmp_path}/d2"), LocalDirStore)
        assert isinstance(
            open_store(f"sqlite:{tmp_path}/s.db"), SqliteStore
        )
        assert isinstance(open_store(str(tmp_path / "s.sqlite")), SqliteStore)
        assert isinstance(open_store(str(tmp_path / "s.db")), SqliteStore)

    def test_reopen_by_url_sees_the_same_store(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        claim = store.claim("w1")
        store.finish(claim, {"ok": True})
        reopened = open_store(store.url)
        assert reopened.header()["run_id"] == "r1"
        assert reopened.terminal(claim.cell)["payload"] == {"ok": True}

    def test_an_instance_passes_through(self, backend, tmp_path):
        store = seeded(backend, tmp_path)
        assert open_store(store) is store


class TestStoreDoctor:
    def test_healthy_run(self, backend, tmp_path):
        store = seeded(backend, tmp_path, cells=2)
        for _ in range(2):
            claim = store.claim("w1")
            store.finish(claim, {"ok": True})
        report = store_doctor(store)
        assert report["complete"] is True
        assert report["counts"]["finished"] == 2
        assert report["double_executions"] == []
        assert report["expired_leases"] == []
        assert report["reclaims"] == 0

    def test_reclaims_and_double_executions_are_surfaced(
        self, backend, tmp_path
    ):
        store = seeded(backend, tmp_path, cells=2)
        store.claim("w-dead", lease_s=0.05)
        time.sleep(0.1)
        takeover = store.claim("w-live", lease_s=30.0)
        store.finish(takeover, {"ok": True})
        store.write_terminal(0, "finished", {"late": True})
        report = store_doctor(store)
        assert report["reclaims"] == 1
        assert report["reclaimed_cells"] == [0]
        assert report["double_executions"] == [0]

    def test_expired_lease_is_reported(self, backend, tmp_path):
        store = seeded(backend, tmp_path, cells=1)
        store.claim("w-dead", lease_s=0.05)
        time.sleep(0.1)
        report = store_doctor(store)
        assert report["expired_leases"] == [0]


class TestCrashHookParsing:
    def test_bad_spec_is_a_store_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_CRASH_AFTER", "nonsense")
        with pytest.raises(StoreError, match="REPRO_STORE_CRASH_AFTER"):
            LocalDirStore(tmp_path / "s")
