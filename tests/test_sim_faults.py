"""Unit tests for the adversary contract plumbing in the simulator."""

from __future__ import annotations

import pytest

from repro.sim import derive_rng, split_fault_slots
from repro.sim.faults import AdversaryContext, NullAdversary
from repro.sim.topology import FullMeshTopology


class TestSplitFaultSlots:
    def test_count_and_range(self):
        slots = split_fault_slots(10, 3, derive_rng(1, "x"))
        assert len(slots) == 3
        assert all(0 <= slot < 10 for slot in slots)
        assert slots == tuple(sorted(slots))

    def test_fixed_slots_pinned(self):
        slots = split_fault_slots(10, 3, derive_rng(1, "x"), fixed=[7])
        assert 7 in slots and len(slots) == 3

    def test_fixed_exactly_t(self):
        assert split_fault_slots(5, 2, derive_rng(0, "x"), fixed=[1, 3]) == (1, 3)

    def test_too_many_fixed_raises(self):
        with pytest.raises(ValueError):
            split_fault_slots(5, 1, derive_rng(0, "x"), fixed=[1, 3])

    def test_duplicate_fixed_deduplicated(self):
        slots = split_fault_slots(5, 1, derive_rng(0, "x"), fixed=[2, 2])
        assert slots == (2,)

    def test_zero_faults(self):
        assert split_fault_slots(5, 0, derive_rng(0, "x")) == ()

    def test_deterministic(self):
        first = split_fault_slots(20, 5, derive_rng(9, "s"))
        second = split_fault_slots(20, 5, derive_rng(9, "s"))
        assert first == second


class TestAdversaryContext:
    def make(self, n=6, t=2):
        topology = FullMeshTopology(n, seed=0)
        return AdversaryContext(
            n=n,
            t=t,
            byzantine=(1, 4),
            ids={i: 10 * (i + 1) for i in range(n)},
            topology=topology,
            rng=derive_rng(0, "adv"),
            make_process=lambda index: None,
        )

    def test_correct_complement(self):
        ctx = self.make()
        assert ctx.correct == (0, 2, 3, 5)

    def test_correct_ids_sorted(self):
        ctx = self.make()
        assert ctx.correct_ids() == (10, 30, 40, 60)

    def test_null_adversary_sends_nothing(self):
        adversary = NullAdversary()
        adversary.bind(self.make())
        assert adversary.send(1, {}) == {}
        adversary.observe(1, {})  # no-op, must not raise
