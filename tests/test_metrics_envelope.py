"""Bit-accounting audit for multiplexed EnvelopeMessage traffic + pinned
E6/E7-style counters.

PR 2's composition layer wraps sub-protocol traffic in per-instance
:class:`~repro.sim.compose.EnvelopeMessage` frames, which changes what the
metrics *mean*: ``peak_message_bits`` is the largest single **envelope**
(kind tag + instance tag + payload), and per-round ``correct_bits`` is the
sum of envelope sizes — a multiplexed protocol's combined round traffic is
split across many small frames rather than one big message (that is why E7
compares per-round total bits, per CHANGES.md). This file audits that
accounting from first principles on a fixed scenario and pins the E6/E7
counters of the two most accounting-sensitive registered algorithms, so a
future engine or compose change that shifts a single bit fails loudly.
"""

from __future__ import annotations

import pytest

from helpers import run_registered, standard_ids
from repro.core.messages import IdMessage
from repro.sim import (
    KIND_BITS,
    EnvelopeMessage,
    Multiplexer,
    Process,
    engine_names,
    run_protocol,
)

ENGINES = tuple(engine_names())


class _OneShot(Process):
    """Sub-protocol broadcasting one IdMessage, then finishing."""

    def __init__(self, ctx, ident):
        super().__init__(ctx)
        self.ident = ident

    def send(self, round_no):
        return self.broadcast(IdMessage(self.ident))

    def deliver(self, round_no, inbox):
        self.output_value = self.ident


def _mux_factory(ctx):
    return Multiplexer(
        ctx,
        {1: _OneShot(ctx, 10), 2: _OneShot(ctx, 20)},
        finish=lambda outputs: sorted(outputs.values()),
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_envelope_bit_accounting_from_first_principles(engine):
    """n processes each broadcast two envelopes for one round; every counter
    is computable by hand from the bit model."""
    n = 5
    result = run_protocol(
        _mux_factory, n=n, t=0, ids=standard_ids(n), seed=0, engine=engine
    )
    metrics = result.metrics
    id_bits, rank_bits = metrics.id_bits, metrics.rank_bits

    payload_bits = IdMessage(10).bit_size(id_bits=id_bits, rank_bits=rank_bits)
    envelope_bits = EnvelopeMessage(tag=1, payload=IdMessage(10)).bit_size(
        id_bits=id_bits, rank_bits=rank_bits
    )
    # The envelope model: kind tag + an instance tag charged at rank_bits,
    # then the payload's own full size. The frame must cost MORE than its
    # payload — tag bits are real traffic, not bookkeeping.
    assert envelope_bits == KIND_BITS + rank_bits + payload_bits
    assert envelope_bits > payload_bits

    # Round 1: n senders × 2 envelopes × n-link broadcast fan-out.
    assert metrics.round_count == 1
    record = metrics.rounds[0]
    assert record.correct_messages == n * 2 * n
    assert record.correct_bits == n * 2 * n * envelope_bits
    assert record.byzantine_messages == 0

    # Peak is the largest single frame — the envelope, not the payload it
    # multiplexes (the accounting bug class this file guards against).
    assert metrics.peak_message_bits == envelope_bits

    assert all(out == [10, 20] for out in result.outputs.values())


@pytest.mark.parametrize("engine", ENGINES)
def test_per_round_bits_sum_to_run_total(engine):
    """The aggregate properties must be exact sums of the per-round records
    (E6/E7 read both; they may never drift apart)."""
    result = run_registered(
        "consensus", 7, 2, attack="conforming", seed=0, engine=engine
    )
    metrics = result.metrics
    assert metrics.correct_bits == sum(r.correct_bits for r in metrics.rounds)
    assert metrics.correct_messages == sum(
        r.correct_messages for r in metrics.rounds
    )
    assert metrics.byzantine_messages == sum(
        r.byzantine_messages for r in metrics.rounds
    )
    assert len({r.round_no for r in metrics.rounds}) == metrics.round_count


# Pinned counters: alg1 is E6's subject (message complexity of Alg. 1),
# consensus is E7's (the multiplexed EIG baseline whose per-round envelope
# accounting PR 2 changed). Values measured at (n=7, t=2, standard ids,
# silent attack, seed 0) — any engine, compose, or bit-model change that
# moves them is a semantic change to the paper's complexity measurements
# and must be made deliberately.
PINNED = {
    "alg1": {
        "round_count": 10,
        "correct_messages": 595,
        "correct_bits": 54705,
        "peak_message_bits": 233,
        "per_round": [
            (1, 35, 525),
            (2, 175, 2625),
            (3, 175, 2625),
            (4, 0, 0),
            (5, 35, 8155),
            (6, 35, 8155),
            (7, 35, 8155),
            (8, 35, 8155),
            (9, 35, 8155),
            (10, 35, 8155),
        ],
    },
    "consensus": {
        "round_count": 3,
        "correct_messages": 385,
        "correct_bits": 24290,
        "peak_message_bits": 98,
        "per_round": [(1, 35, 1015), (2, 175, 6125), (3, 175, 17150)],
    },
}


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("algorithm", sorted(PINNED))
def test_pinned_traffic_counters(algorithm, engine):
    result = run_registered(
        algorithm, 7, 2, attack="silent", seed=0, engine=engine
    )
    metrics = result.metrics
    expected = PINNED[algorithm]
    assert metrics.round_count == expected["round_count"]
    assert metrics.correct_messages == expected["correct_messages"]
    assert metrics.correct_bits == expected["correct_bits"]
    assert metrics.peak_message_bits == expected["peak_message_bits"]
    assert [
        (r.round_no, r.correct_messages, r.correct_bits) for r in metrics.rounds
    ] == expected["per_round"]
