"""Integration tests for the constant-time strong variant (Section V)."""

from __future__ import annotations

import pytest

from helpers import assert_renaming_ok, standard_ids
from repro import ConstantTimeRenaming, SystemParams, run_protocol
from repro.adversary import ALG1_ATTACKS, make_adversary

# (n, t) pairs inside N > t^2 + 2t.
SIZES = [(4, 1), (9, 2), (16, 3)]


class TestTheoremV3:
    @pytest.mark.parametrize("attack", ALG1_ATTACKS)
    @pytest.mark.parametrize("n,t", SIZES)
    def test_strong_renaming_under_attack(self, n, t, attack):
        result = run_protocol(
            ConstantTimeRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary(attack),
            seed=0,
        )
        # Lemma V.1: namespace is exactly N — strong renaming.
        assert_renaming_ok(
            result, n, context=f"constant n={n} t={t} attack={attack}"
        )

    @pytest.mark.parametrize("n,t", SIZES)
    def test_exactly_eight_rounds(self, n, t):
        result = run_protocol(
            ConstantTimeRenaming,
            n=n,
            t=t,
            ids=standard_ids(n),
            adversary=make_adversary("rank-skew"),
            seed=1,
        )
        assert result.metrics.round_count == 8

    def test_regime_enforced(self):
        # n=8, t=2 has N <= t^2 + 2t = 8.
        with pytest.raises(ValueError):
            run_protocol(
                ConstantTimeRenaming, n=8, t=2, ids=standard_ids(8), seed=0
            )

    def test_round_count_independent_of_t(self):
        rounds = set()
        for n, t in SIZES:
            result = run_protocol(
                ConstantTimeRenaming,
                n=n,
                t=t,
                ids=standard_ids(n),
                adversary=make_adversary("silent"),
                seed=0,
            )
            rounds.add(result.metrics.round_count)
        assert rounds == {8}

    def test_lemma_v1_forging_cannot_add_ids(self):
        """In the constant-time regime the forging budget collapses:
        |accepted| stays exactly N even under the saturation attack."""
        result = run_protocol(
            ConstantTimeRenaming,
            n=9,
            t=2,
            ids=standard_ids(9),
            adversary=make_adversary("id-forging"),
            seed=0,
            collect_trace=True,
        )
        for event in result.trace.select(event="accepted"):
            if event.process in result.correct:
                assert len(event.detail) == 9

    def test_lemma_v2_spread_after_four_rounds(self):
        """After the 4 scheduled voting rounds the correct ranks for every
        correct id sit within (delta-1)/2 of each other."""
        params = SystemParams(9, 2)
        result = run_protocol(
            ConstantTimeRenaming,
            n=9,
            t=2,
            ids=standard_ids(9),
            adversary=make_adversary("boundary-votes"),
            seed=0,
            collect_trace=True,
        )
        final_round = 8
        snapshots = [
            e.detail
            for e in result.trace.select(event="ranks", round_no=final_round)
            if e.process in result.correct
        ]
        correct_ids = {result.ids[i] for i in result.correct}
        for identifier in correct_ids:
            values = [s[identifier] for s in snapshots]
            assert max(values) - min(values) < params.convergence_target
