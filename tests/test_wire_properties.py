"""Hypothesis round-trip properties for every registered wire tag.

Two properties per the codec's contract (:mod:`repro.wire`):

1. **Round-trip**: for every registered message type, ``decode(encode(m))
   == m`` for arbitrary valid field values — including ``EnvelopeMessage``
   (tag 21) wrapping every other type, and envelopes nested in envelopes.
   Ranks may decode as :class:`~fractions.Fraction` where an ``int`` or
   ``float`` went in; the codec is exact, so equality still holds.
2. **Mutation totality**: corrupting any valid frame (byte flips, inserts,
   deletions, truncation) yields either :class:`~repro.wire.WireError` or
   a message that itself round-trips — never another exception and never
   a value that re-encodes to something that decodes differently.

The strategy registry below is *checked against* :func:`repro.wire
.wire_types`: registering a new message type in the codec without adding
a strategy here fails the suite, so coverage of "every tag" is enforced,
not aspirational.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreement.approximate import ValueMessage
from repro.agreement.eig import RelayMessage
from repro.agreement.phase_king import KingMessage, PhaseValueMessage
from repro.baselines.splitting import ClaimMessage
from repro.broadcast.bracha import (
    EchoValueMessage,
    InitialMessage,
    ReadyValueMessage,
)
from repro.core.messages import (
    EchoMessage,
    IdMessage,
    MultiEchoMessage,
    RanksMessage,
    ReadyMessage,
)
from repro.service.messages import (
    CertificateMessage,
    CloseSessionMessage,
    NamesAssignedMessage,
    OpenSessionMessage,
    QueryRequestMessage,
    QueryResponseMessage,
    RegisterIdsMessage,
    ServerBusyMessage,
    SessionErrorMessage,
    SessionWelcomeMessage,
)
from repro.sim.compose import EnvelopeMessage
from repro.wire import WireError, decode_message, encode_message, wire_types

_uint = st.integers(min_value=0, max_value=2**64)
_sint = st.integers(min_value=-(2**63), max_value=2**63)
# The decoder caps varints at 127 bits (the "varint too long" DoS guard), so
# rank components must stay below 2**126. Protocol ranks are bounded by n² —
# many orders of magnitude inside the cap — but hypothesis would happily draw
# a subnormal float whose exact denominator is 2**1074, which encodes fine
# and is then (correctly) rejected on decode. test_oversized_rank_rejected
# pins that boundary explicitly.
_rank = st.one_of(
    st.integers(min_value=-(2**100), max_value=2**100),
    st.fractions(
        min_value=-(10**18), max_value=10**18, max_denominator=10**18
    ),
    st.floats(
        allow_nan=False, allow_infinity=False, min_value=-(2.0**50),
        max_value=2.0**50,
    ).filter(lambda v: v == 0 or abs(v) >= 2.0**-50),
)


_text = st.text(max_size=64)


def _ranks_entries():
    return st.lists(st.tuples(_uint, _rank), max_size=12).map(tuple)


def _relay_entries():
    path = st.lists(_uint, max_size=6).map(tuple)
    return st.lists(st.tuples(path, _sint), max_size=8).map(tuple)


#: One hypothesis strategy per registered wire type. Envelope payloads draw
#: from every *other* type plus one level of nesting (the codec supports
#: arbitrary depth; two levels exercise the recursion without blowing up
#: example sizes).
STRATEGIES = {
    IdMessage: st.builds(IdMessage, _uint),
    EchoMessage: st.builds(EchoMessage, _uint),
    ReadyMessage: st.builds(ReadyMessage, _uint),
    InitialMessage: st.builds(InitialMessage, _sint),
    EchoValueMessage: st.builds(EchoValueMessage, _sint),
    ReadyValueMessage: st.builds(ReadyValueMessage, _sint),
    PhaseValueMessage: st.builds(PhaseValueMessage, _sint),
    KingMessage: st.builds(KingMessage, _sint),
    RanksMessage: st.builds(RanksMessage, _ranks_entries()),
    MultiEchoMessage: st.builds(
        MultiEchoMessage, st.lists(_uint, max_size=12).map(tuple)
    ),
    ValueMessage: st.builds(ValueMessage, _rank),
    ClaimMessage: st.builds(ClaimMessage, _uint, _uint, _uint),
    RelayMessage: st.builds(RelayMessage, _relay_entries()),
    # Service-session frames (tags 22+). Text fields are capped at
    # MAX_TEXT_BYTES by the codec; these strategies stay well inside.
    OpenSessionMessage: st.builds(
        OpenSessionMessage, _text, _uint, _text, _uint, _text
    ),
    QueryRequestMessage: st.builds(QueryRequestMessage, _text),
    QueryResponseMessage: st.builds(QueryResponseMessage, _text, _text),
    RegisterIdsMessage: st.builds(
        RegisterIdsMessage, st.lists(_uint, max_size=16).map(tuple)
    ),
    CloseSessionMessage: st.builds(CloseSessionMessage),
    SessionWelcomeMessage: st.builds(
        SessionWelcomeMessage, _uint, _uint, _uint
    ),
    ServerBusyMessage: st.builds(ServerBusyMessage, _uint, _uint),
    NamesAssignedMessage: st.builds(
        NamesAssignedMessage,
        st.lists(st.tuples(_uint, _uint), max_size=12).map(tuple),
        _text,
        _uint,
    ),
    CertificateMessage: st.builds(
        CertificateMessage,
        _uint,
        st.booleans(),
        st.lists(_text, max_size=4).map(tuple),
        st.lists(_text, max_size=4).map(tuple),
    ),
    SessionErrorMessage: st.builds(
        SessionErrorMessage, _text, _text, _sint
    ),
}

_flat_payload = st.one_of(*STRATEGIES.values())
STRATEGIES[EnvelopeMessage] = st.builds(
    EnvelopeMessage,
    _uint,
    st.one_of(_flat_payload, st.builds(EnvelopeMessage, _uint, _flat_payload)),
)

_any_message = st.one_of(*STRATEGIES.values())


def test_every_registered_tag_has_a_strategy():
    """New codec registrations must extend this suite (see module docstring)."""
    missing = [cls.__name__ for cls in wire_types() if cls not in STRATEGIES]
    assert not missing, f"no round-trip strategy for wire types: {missing}"


def _normalize(value):
    """Ranks decode as exact Fractions; compare through that lens."""
    if isinstance(value, float):
        return Fraction(*value.as_integer_ratio())
    return value


@pytest.mark.parametrize(
    "cls", sorted(STRATEGIES, key=lambda c: c.__name__), ids=lambda c: c.__name__
)
def test_round_trip(cls):
    @settings(max_examples=60, deadline=None)
    @given(message=STRATEGIES[cls])
    def check(message):
        encoded = encode_message(message)
        decoded = decode_message(encoded)
        assert type(decoded) is type(message)
        assert decoded == message
        # Canonical: re-encoding the decoded message is byte-identical.
        assert encode_message(decoded) == encoded

    check()


@settings(max_examples=150, deadline=None)
@given(
    message=_any_message,
    mutation=st.tuples(
        st.sampled_from(["flip", "insert", "delete", "truncate"]),
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=255),
    ),
)
def test_mutated_frames_never_misbehave(message, mutation):
    """Any corruption of a valid frame is either rejected with WireError or
    lands on another valid frame that round-trips — no crashes, no silent
    one-way decodes."""
    kind, position, value = mutation
    encoded = bytearray(encode_message(message))
    position %= max(len(encoded), 1)
    if kind == "flip":
        encoded[position] ^= value or 0xFF
    elif kind == "insert":
        encoded.insert(position, value)
    elif kind == "delete" and encoded:
        del encoded[position]
    else:
        encoded = encoded[:position]
    try:
        decoded = decode_message(bytes(encoded))
    except WireError:
        return
    assert decode_message(encode_message(decoded)) == decoded


def test_oversized_rank_rejected():
    """A rank component of ≥2**127 encodes (the writer is unbounded) but is
    rejected by the reader's varint cap — with WireError, not a crash."""
    oversized = encode_message(ValueMessage(Fraction(1, 2**1074)))
    with pytest.raises(WireError, match="varint too long"):
        decode_message(oversized)


@settings(max_examples=60, deadline=None)
@given(message=_any_message)
def test_bit_size_model_is_wire_exact_or_conservative(message):
    """Where a bit-size model exists it must not *under*-state the real
    encoding (the paper's complexity accounting depends on it). Pooled
    protocol types have exact models (asserted in tests/test_wire.py);
    here we only require the universal inequality on arbitrary values."""
    from repro.wire import encoded_bits

    bits = encoded_bits(message)
    assert bits == 8 * len(encode_message(message))
    assert bits > 0
