"""Unit tests for synchronous delivery and outbox expansion."""

from __future__ import annotations

import pytest

from repro.core.messages import IdMessage
from repro.sim import (
    BROADCAST,
    FullMeshTopology,
    ProtocolViolationError,
    SynchronousNetwork,
)


def make_network(n: int, seed: int = 0) -> SynchronousNetwork:
    return SynchronousNetwork(FullMeshTopology(n, seed=seed))


class TestExpandOutbox:
    def test_broadcast_reaches_every_link(self):
        network = make_network(5)
        transmissions = network.expand_outbox(0, {BROADCAST: [IdMessage(7)]})
        assert sorted(link for link, _ in transmissions) == [1, 2, 3, 4, 5]

    def test_unicast_single_link(self):
        network = make_network(5)
        transmissions = network.expand_outbox(0, {3: [IdMessage(7)]})
        assert transmissions == [(3, IdMessage(7))]

    def test_multiple_messages_per_link(self):
        network = make_network(4)
        transmissions = network.expand_outbox(0, {2: [IdMessage(1), IdMessage(2)]})
        assert len(transmissions) == 2

    def test_invalid_link_rejected(self):
        network = make_network(4)
        with pytest.raises(ProtocolViolationError):
            network.expand_outbox(0, {9: [IdMessage(1)]})

    def test_negative_link_rejected(self):
        network = make_network(4)
        with pytest.raises(ProtocolViolationError):
            network.expand_outbox(0, {-1: [IdMessage(1)]})

    def test_non_message_rejected(self):
        network = make_network(4)
        with pytest.raises(ProtocolViolationError):
            network.expand_outbox(0, {1: ["not a message"]})


class TestDeliver:
    def test_broadcast_delivered_to_everyone(self):
        network = make_network(4)
        plan = network.deliver({0: {BROADCAST: [IdMessage(5)]}})
        assert sorted(plan) == [0, 1, 2, 3]

    def test_self_loop_delivery(self):
        network = make_network(4)
        topology = network.topology
        plan = network.deliver({0: {topology.self_link: [IdMessage(5)]}})
        assert plan == {0: {topology.self_link: [IdMessage(5)]}}

    def test_unicast_arrives_on_recipients_label_for_sender(self):
        network = make_network(5, seed=3)
        topology = network.topology
        target_link = 2
        recipient = topology.peer_of(0, target_link)
        plan = network.deliver({0: {target_link: [IdMessage(9)]}})
        expected_link = topology.label_of(recipient, 0)
        assert plan[recipient] == {expected_link: [IdMessage(9)]}

    def test_messages_from_one_sender_share_recipient_link(self):
        # All traffic from a given peer lands on one stable link label.
        network = make_network(6, seed=4)
        plan = network.deliver({2: {BROADCAST: [IdMessage(1), IdMessage(2)]}})
        for recipient, links in plan.items():
            assert len(links) == 1
            (messages,) = links.values()
            assert len(messages) == 2

    def test_two_senders_arrive_on_distinct_links(self):
        network = make_network(6, seed=5)
        plan = network.deliver(
            {0: {BROADCAST: [IdMessage(1)]}, 1: {BROADCAST: [IdMessage(2)]}}
        )
        for recipient in (2, 3, 4, 5):
            assert len(plan[recipient]) == 2

    def test_freeze_inbox_makes_tuples(self):
        frozen = SynchronousNetwork.freeze_inbox({1: [IdMessage(3)]})
        assert frozen == {1: (IdMessage(3),)}

    def test_freeze_inbox_sorts_links(self):
        # The Inbox contract promises ascending link order, so protocol hot
        # loops can skip per-round re-sorting (see ordered_links).
        frozen = SynchronousNetwork.freeze_inbox(
            {4: [IdMessage(4)], 1: [IdMessage(1)], 3: [IdMessage(3)]}
        )
        assert list(frozen) == [1, 3, 4]


class TestRoute:
    def test_route_returns_plan_and_transmissions(self):
        network = make_network(4)
        delivery = network.route(
            {0: {BROADCAST: [IdMessage(5)]}, 1: {2: [IdMessage(6)]}}
        )
        assert delivery.plan == network.deliver(
            {0: {BROADCAST: [IdMessage(5)]}, 1: {2: [IdMessage(6)]}}
        )
        # Broadcast over 4 links (incl. self-loop) + one unicast.
        assert delivery.sent_count(0) == 4
        assert delivery.sent_count(1) == 1
        assert delivery.sent_count(3) == 0
        assert [m for _, m in delivery.transmissions[0]] == [IdMessage(5)] * 4

    def test_transmissions_match_expand_outbox(self):
        network = make_network(5, seed=2)
        outbox = {BROADCAST: [IdMessage(1)], 2: [IdMessage(9)]}
        delivery = network.route({0: outbox})
        assert delivery.transmissions[0] == network.expand_outbox(0, outbox)
