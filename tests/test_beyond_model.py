"""Beyond-threshold behaviour: every algorithm at n at-or-below its bound.

The contract: a configuration outside an algorithm's proven regime either
raises a *typed* error (ConfigurationError from the regime gate or the
constructor, SafetyViolation from a tripped invariant/monitor, any other
SimulationError from the round loop) or runs to completion and yields a
total :class:`PropertyReport` that names exactly which property broke.
Bare KeyError/RuntimeError/recursion escapes are harness bugs.
"""

from __future__ import annotations

import pytest

from helpers import standard_ids
from repro.adversary import make_adversary
from repro.analysis import ALGORITHMS, check_renaming, run_experiment
from repro.analysis.properties import PropertyReport
from repro.core import (
    OrderPreservingRenaming,
    RenamingOptions,
    SystemParams,
    TwoStepRenaming,
)
from repro.core.fast import TwoStepOptions
from repro.sim import ConfigurationError, SimulationError, run_protocol
from repro.wire import WireError

#: (algorithm, n, t) with n at or just below the algorithm's proven bound;
#: every tuple violates the registered regime predicate.
BEYOND = [
    ("alg1", 6, 2),           # n = 3t: optimal-resilience bound N > 3t
    ("alg1-constant", 8, 2),  # n = t^2 + 2t: constant-time bound
    ("alg4", 10, 2),          # n = 2t^2 + t: fast-regime bound
    ("translated", 6, 2),     # inherits N > 3t from the Byzantine translation
    ("consensus", 6, 2),      # consensus baseline needs N > 3t
]

CASES = [
    (algorithm, n, t, attack)
    for algorithm, n, t in BEYOND
    for attack in ALGORITHMS[algorithm].attacks
]


CASE_IDS = [f"{a}-{n}:{t}-{attack}" for a, n, t, attack in CASES]


@pytest.mark.parametrize("algorithm,n,t,attack", CASES, ids=CASE_IDS)
def test_regimes_are_enforced_with_a_typed_error(algorithm, n, t, attack):
    assert not ALGORITHMS[algorithm].supports(n, t)
    with pytest.raises(ConfigurationError, match="resilience regime"):
        run_experiment(algorithm, n, t, standard_ids(n), attack=attack)


@pytest.mark.parametrize("algorithm,n,t,attack", CASES, ids=CASE_IDS)
def test_bypass_is_typed_or_yields_a_total_report(algorithm, n, t, attack):
    """enforce_regime=False may still refuse in the constructor (typed) or
    run beyond the model — never escape with an untyped exception."""
    try:
        record = run_experiment(
            algorithm, n, t, standard_ids(n), attack=attack,
            enforce_regime=False, monitor=True, max_rounds=64,
        )
    except (SimulationError, WireError):
        return
    report = record.report
    assert isinstance(report, PropertyReport)
    if not report.ok:
        assert report.broken  # names which property failed
        for name in report.broken:
            assert any(v.startswith(name) for v in report.violations)


def _run_unguarded(factory, n, t, attack, seed=0, namespace=None):
    """Run with constructor guards off; classify the outcome."""
    ids = standard_ids(n)
    try:
        result = run_protocol(
            factory, n=n, t=t, ids=ids,
            adversary=make_adversary(attack), seed=seed, max_rounds=64,
        )
    except (SimulationError, WireError) as exc:
        return ("typed-error", exc)
    params = SystemParams(n, t)
    bound = namespace if namespace is not None else params.namespace_bound
    return ("report", check_renaming(result, bound))


@pytest.mark.parametrize("attack", ALGORITHMS["alg1"].attacks)
@pytest.mark.parametrize("seed", range(3))
def test_alg1_at_the_bound_with_guards_off(attack, seed):
    factory = lambda ctx: OrderPreservingRenaming(
        ctx, RenamingOptions(enforce_resilience=False)
    )
    kind, outcome = _run_unguarded(factory, 6, 2, attack, seed=seed)
    if kind == "typed-error":
        assert isinstance(outcome, (SimulationError, WireError))
        return
    assert isinstance(outcome, PropertyReport)
    if not outcome.ok:
        assert outcome.broken


@pytest.mark.parametrize("attack", ALGORITHMS["alg4"].attacks)
@pytest.mark.parametrize("seed", range(3))
def test_alg4_at_the_bound_with_guards_off(attack, seed):
    factory = lambda ctx: TwoStepRenaming(
        ctx, TwoStepOptions(enforce_resilience=False)
    )
    kind, outcome = _run_unguarded(
        factory, 10, 2, attack, seed=seed,
        namespace=SystemParams(10, 2).fast_namespace_bound,
    )
    if kind == "typed-error":
        assert isinstance(outcome, (SimulationError, WireError))
        return
    assert isinstance(outcome, PropertyReport)
    if not outcome.ok:
        assert outcome.broken


def test_constructor_guards_raise_configuration_error():
    """The old bare-ValueError guards are now typed (and still ValueErrors,
    for callers that catch the historical type)."""
    with pytest.raises(ConfigurationError):
        run_protocol(OrderPreservingRenaming, n=6, t=2, ids=standard_ids(6))
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(ConfigurationError, SimulationError)


def test_classification_maps_broken_properties_to_fault_families():
    report = PropertyReport(
        names={}, namespace=10, uniqueness=False,
        violations=["uniqueness: name 3 assigned twice"],
        beyond_model=True, injected={"drop": 4, "corrupt": 0},
    )
    assert report.broken == ("uniqueness",)
    # Only fault families with non-zero counts are candidate causes.
    assert report.classification() == {"uniqueness": ("drop",)}
    assert str(report).startswith("[beyond-model] ")
    # Without injection a broken property is an algorithm bug: no families.
    clean = PropertyReport(names={}, namespace=10, uniqueness=False)
    assert clean.classification() == {"uniqueness": ()}
