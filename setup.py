"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so the package can be
installed in environments without the ``wheel`` package (where pip's PEP-660
editable build is unavailable): ``python setup.py develop``.
"""

from setuptools import setup

setup()
